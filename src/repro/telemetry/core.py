"""The telemetry façade: registry + spans + event log behind one object.

A :class:`Telemetry` instance is what the simulator seams talk to: it
bundles a :class:`~repro.telemetry.registry.MetricsRegistry`, a bounded
:class:`~repro.telemetry.events.EventLog`, and nested monotonic-clock
timing spans.  :class:`NullTelemetry` is the disarmed twin — every method
is a no-op and ``enabled`` is False — so the world can hold a telemetry
object unconditionally while its hot paths guard with one ``is None``
check against the *armed* handle (exactly the fault-injection seam
pattern; measured zero cost when disarmed).

Spans nest: entering ``span("decide")`` inside ``span("engine_run")``
attributes the inner duration to both the inner span's *total* time and
subtracts it from the outer span's *self* time, so per-phase breakdowns
("where did the run go?") add up without double counting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.telemetry.events import EventLog, TelemetryEvent
from repro.telemetry.registry import Gauge, Histogram, MetricsRegistry

__all__ = ["SpanStats", "TelemetrySummary", "Telemetry", "NullTelemetry", "NULL_TELEMETRY"]


@dataclass
class SpanStats:
    """Aggregated timings of one span name.

    ``total_s`` is wall time between enter and exit; ``self_s`` excludes
    time spent inside nested child spans, so summing ``self_s`` over all
    names recovers (almost exactly) the instrumented wall clock once.
    """

    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    def record(self, duration: float, self_time: float) -> None:
        """Fold one completed span instance into the aggregate."""
        self.count += 1
        self.total_s += duration
        self.self_s += self_time
        if duration < self.min_s:
            self.min_s = duration
        if duration > self.max_s:
            self.max_s = duration

    def as_dict(self) -> dict[str, float]:
        """Plain-dict form for summaries and exports."""
        return {
            "count": self.count,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "mean_s": self.total_s / self.count if self.count else 0.0,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


def _parse_series_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a summary series key ``name{k=v,...}`` back into name + labels.

    Inverse of the key format :meth:`Telemetry.summary` emits.  Label
    values in the shipped taxonomy are plain identifiers (``reason=loss``,
    ``outcome=hit``), so the split on ``,`` / ``=`` is unambiguous.
    """
    if "{" not in key:
        return key, {}
    name, _, tag = key.partition("{")
    labels: dict[str, str] = {}
    for pair in tag[:-1].split(","):
        if pair:
            label, _, value = pair.partition("=")
            labels[label] = value
    return name, labels


class _Span:
    """Context manager for one span instance (internal)."""

    __slots__ = ("_telemetry", "name", "_start", "_child_time")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self.name = name
        self._start = 0.0
        self._child_time = 0.0

    def __enter__(self) -> "_Span":
        self._telemetry._span_stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        duration = time.perf_counter() - self._start
        tel = self._telemetry
        tel._span_stack.pop()
        if tel._span_stack:
            tel._span_stack[-1]._child_time += duration
        stats = tel.spans.get(self.name)
        if stats is None:
            stats = tel.spans[self.name] = SpanStats()
        stats.record(duration, duration - self._child_time)


@dataclass(frozen=True)
class TelemetrySummary:
    """Frozen, export-ready digest of one telemetry object.

    All fields are sorted tuples of plain scalars, so summaries are
    hashable, comparable, and survive the ``repr``/``literal_eval``
    round-trip :class:`~repro.sim.trace.SimulationTrace` metadata uses.
    """

    counters: tuple[tuple[str, float], ...]
    gauges: tuple[tuple[str, float], ...]
    histograms: tuple[tuple[str, tuple[tuple[str, float], ...]], ...]
    spans: tuple[tuple[str, tuple[tuple[str, float], ...]], ...]
    event_counts: tuple[tuple[str, int], ...]
    events_recorded: int
    events_dropped: int

    def as_dict(self) -> dict:
        """Nested plain-dict form (JSON and ``.npz``-meta friendly)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {name: dict(stats) for name, stats in self.histograms},
            "spans": {name: dict(stats) for name, stats in self.spans},
            "event_counts": dict(self.event_counts),
            "events_recorded": self.events_recorded,
            "events_dropped": self.events_dropped,
        }

    @staticmethod
    def from_dict(data: dict) -> "TelemetrySummary":
        """Rebuild the exact summary :meth:`as_dict` flattened.

        The inverse the orchestrator's result store relies on: summaries
        survive a JSON round trip bit for bit.
        """
        return TelemetrySummary(
            counters=tuple(sorted(data.get("counters", {}).items())),
            gauges=tuple(sorted(data.get("gauges", {}).items())),
            histograms=tuple(
                sorted(
                    (name, tuple(sorted(stats.items())))
                    for name, stats in data.get("histograms", {}).items()
                )
            ),
            spans=tuple(
                sorted(
                    (name, tuple(sorted(stats.items())))
                    for name, stats in data.get("spans", {}).items()
                )
            ),
            event_counts=tuple(
                sorted(
                    (kind, int(n))
                    for kind, n in data.get("event_counts", {}).items()
                )
            ),
            events_recorded=int(data.get("events_recorded", 0)),
            events_dropped=int(data.get("events_dropped", 0)),
        )


class Telemetry:
    """Armed telemetry: collects metrics, spans, and events.

    Parameters
    ----------
    max_events:
        Bound of the structured event log (oldest evicted first).

    Examples
    --------
    >>> tel = Telemetry()
    >>> with tel.span("decide"):
    ...     tel.count("decisions")
    ...     tel.event("decision_cache_miss", t=1.5, node=3)
    >>> tel.registry.counter("decisions").value
    1.0
    >>> tel.spans["decide"].count
    1
    """

    enabled: bool = True

    def __init__(self, max_events: int = 65536) -> None:
        self.registry = MetricsRegistry()
        self.events = EventLog(maxsize=max_events)
        self.spans: dict[str, SpanStats] = {}
        self._span_stack: list[_Span] = []
        # Best (source, value) per gauge key across sourced absorbs; see
        # the deterministic-resolution rule in :meth:`absorb`.
        self._gauge_sources: dict[str, tuple[int | float, float]] = {}

    # ------------------------------------------------------------------ #
    # recording

    def count(self, name: str, amount: float = 1.0, **labels: object) -> None:
        """Increment counter *name* (creating the series on first use)."""
        self.registry.counter(name, **labels).inc(amount)

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """Set gauge *name* to *value*."""
        self.registry.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record *value* into histogram *name*."""
        self.registry.histogram(name, **labels).observe(value)

    def event(self, kind: str, t: float, node: int | None = None, **data: object) -> None:
        """Append one structured event to the bounded log."""
        self.events.append(
            TelemetryEvent(
                kind=kind,
                t=float(t),
                node=node,
                data=tuple(sorted(data.items())),
            )
        )

    def event_batch(
        self, kind: str, tally: int, t: float, node: int | None = None, **data: object
    ) -> None:
        """Append one summarizing event standing for *tally* occurrences.

        Per-kind totals (:meth:`EventLog.kind_counts`) advance by *tally*
        exactly as if *tally* individual events had been appended; only the
        single summary object is retained (the rest are accounted as
        recorded-but-dropped).  The batched Hello pipeline uses this to
        keep armed runs from paying a Python event call per receiver.
        """
        self.events.append(
            TelemetryEvent(
                kind=kind,
                t=float(t),
                node=node,
                data=tuple(sorted(data.items())),
            ),
            tally=tally,
        )

    def span(self, name: str) -> _Span:
        """Timing context for phase *name* (nests; monotonic clock)."""
        return _Span(self, name)

    def absorb(
        self, summary: TelemetrySummary, source: int | float | None = None
    ) -> None:
        """Merge a worker's frozen summary into this live collector.

        The multi-process merge seam: repetition fan-out traces each run
        with a process-local collector and ships back its
        :class:`TelemetrySummary`; absorbing them in the parent makes
        ``--telemetry`` work at any worker count.  Counters, span
        aggregates, per-kind event totals, and histograms merge exactly
        (summaries carry ``sumsq``, so the merged standard deviation is
        the true one; summaries written before ``sumsq`` existed fall
        back to folding the worker's spread at its mean — the old lower
        bound).  Individual worker events are not shipped (summaries are
        bounded); they appear in ``events_dropped`` rather than the
        retained ring buffer.

        *source* orders gauge resolution: when given (the orchestrator
        passes the unit's seed), each gauge keeps the value of the
        maximal ``(source, value)`` pair ever absorbed, so the merged
        gauge is a pure function of the absorbed set — independent of
        completion order at any worker count.  Without a source the
        absorbed value simply overwrites (last writer wins).
        """
        for key, value in summary.counters:
            name, labels = _parse_series_key(key)
            self.registry.counter(name, **labels).inc(value)
        for key, value in summary.gauges:
            name, labels = _parse_series_key(key)
            if source is None:
                self.registry.gauge(name, **labels).set(value)
                continue
            best = self._gauge_sources.get(key)
            if best is None or (source, value) > best:
                self._gauge_sources[key] = (source, value)
                self.registry.gauge(name, **labels).set(value)
        for key, stats in summary.histograms:
            values = dict(stats)
            if not values.get("count"):
                continue
            name, labels = _parse_series_key(key)
            hist = self.registry.histogram(name, **labels)
            hist.count += int(values["count"])
            hist.total += values["total"]
            hist.sumsq += values.get(
                "sumsq", values["count"] * values["mean"] ** 2
            )
            hist.min = min(hist.min, values["min"])
            hist.max = max(hist.max, values["max"])
        for name, stats in summary.spans:
            values = dict(stats)
            if not values.get("count"):
                continue
            agg = self.spans.get(name)
            if agg is None:
                agg = self.spans[name] = SpanStats()
            agg.count += int(values["count"])
            agg.total_s += values["total_s"]
            agg.self_s += values["self_s"]
            agg.min_s = min(agg.min_s, values["min_s"])
            agg.max_s = max(agg.max_s, values["max_s"])
        self.events.absorb_counts(
            dict(summary.event_counts), summary.events_recorded
        )

    # ------------------------------------------------------------------ #
    # reading

    def summary(self) -> TelemetrySummary:
        """Freeze the current state into a :class:`TelemetrySummary`."""
        counters: list[tuple[str, float]] = []
        gauges: list[tuple[str, float]] = []
        histograms: list[tuple[str, tuple[tuple[str, float], ...]]] = []
        for name, labels, inst in self.registry.rows():
            tag = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            key = f"{name}{{{tag}}}" if tag else name
            if isinstance(inst, Histogram):
                histograms.append((key, tuple(sorted(inst.as_dict().items()))))
            elif isinstance(inst, Gauge):
                gauges.append((key, inst.value))
            else:
                counters.append((key, inst.value))
        span_rows = tuple(
            (name, tuple(sorted(stats.as_dict().items())))
            for name, stats in sorted(self.spans.items())
        )
        return TelemetrySummary(
            counters=tuple(counters),
            gauges=tuple(gauges),
            histograms=tuple(histograms),
            spans=span_rows,
            event_counts=tuple(sorted(self.events.kind_counts().items())),
            events_recorded=self.events.recorded,
            events_dropped=self.events.dropped,
        )


class NullTelemetry(Telemetry):
    """Disarmed telemetry: same interface, records nothing.

    The default for every seam.  All methods are no-ops; ``enabled`` is
    False so callers that want a fast path can hoist one boolean check.
    """

    enabled = False

    def count(self, name: str, amount: float = 1.0, **labels: object) -> None:
        """No-op."""

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """No-op."""

    def observe(self, name: str, value: float, **labels: object) -> None:
        """No-op."""

    def event(self, kind: str, t: float, node: int | None = None, **data: object) -> None:
        """No-op."""

    def event_batch(
        self, kind: str, tally: int, t: float, node: int | None = None, **data: object
    ) -> None:
        """No-op."""

    def absorb(
        self, summary: TelemetrySummary, source: int | float | None = None
    ) -> None:
        """No-op."""

    def span(self, name: str) -> "_NullSpan":
        """A context manager that does nothing."""
        return _NULL_SPAN


class _NullSpan:
    """Reusable do-nothing context manager (internal)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()

#: Shared disarmed instance; seams default to this so ``world.telemetry``
#: is always a valid object even when nothing is being collected.
NULL_TELEMETRY = NullTelemetry()
