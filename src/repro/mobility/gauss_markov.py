"""Gauss-Markov mobility (temporally correlated velocities).

Velocity is updated at a fixed cadence:

    s_k = a * s_{k-1} + (1 - a) * s_mean + sqrt(1 - a^2) * sigma_s * w
    d_k = a * d_{k-1} + (1 - a) * d_mean + sqrt(1 - a^2) * sigma_d * w'

with speed ``s`` and direction ``d``; motion between updates is a constant-
velocity leg, so the model compiles to the shared trajectory format.  Nodes
approaching the boundary have their mean direction steered back inward
(the standard edge treatment for this model).
"""

from __future__ import annotations

import math

import numpy as np

from repro.mobility.base import Area, MobilityModel, TrajectorySet
from repro.mobility.waypoint import _pad_legs
from repro.util.validate import check_non_negative, check_positive, check_probability

__all__ = ["GaussMarkov"]


class GaussMarkov(MobilityModel):
    """Gauss-Markov correlated mobility.

    Parameters
    ----------
    mean_speed:
        Long-run mean speed, m/s.
    alpha:
        Memory parameter in [0, 1]: 0 = memoryless, 1 = constant velocity.
    update_interval:
        Seconds between velocity updates (leg duration).
    speed_sigma, direction_sigma:
        Standard deviations of the speed (m/s) and direction (radians)
        innovations.
    """

    def __init__(
        self,
        area: Area,
        n_nodes: int,
        horizon: float,
        mean_speed: float,
        rng: np.random.Generator,
        alpha: float = 0.75,
        update_interval: float = 1.0,
        speed_sigma: float | None = None,
        direction_sigma: float = 0.4,
    ) -> None:
        super().__init__(area, n_nodes, horizon)
        self.mean_speed = check_positive("mean_speed", mean_speed)
        self.alpha = check_probability("alpha", alpha)
        self.update_interval = check_positive("update_interval", update_interval)
        self.speed_sigma = (
            0.2 * self.mean_speed
            if speed_sigma is None
            else check_non_negative("speed_sigma", speed_sigma)
        )
        self.direction_sigma = check_non_negative("direction_sigma", direction_sigma)
        self._rng = rng

    def _compile(self) -> TrajectorySet:
        rng = self._rng
        margin = 0.1 * min(self.area.width, self.area.height)
        noise_scale = math.sqrt(max(0.0, 1.0 - self.alpha * self.alpha))
        times: list[list[float]] = []
        points: list[list[np.ndarray]] = []
        velocities: list[list[np.ndarray]] = []
        start_positions = self.area.sample(rng, self.n_nodes)
        for i in range(self.n_nodes):
            pos = start_positions[i].copy()
            speed = self.mean_speed
            direction = float(rng.uniform(0.0, 2.0 * math.pi))
            t = 0.0
            row_t: list[float] = []
            row_p: list[np.ndarray] = []
            row_v: list[np.ndarray] = []
            while t < self.horizon:
                mean_dir = self._steer_mean(pos, direction, margin)
                speed = (
                    self.alpha * speed
                    + (1.0 - self.alpha) * self.mean_speed
                    + noise_scale * self.speed_sigma * float(rng.standard_normal())
                )
                speed = max(speed, 0.05 * self.mean_speed)
                direction = (
                    self.alpha * direction
                    + (1.0 - self.alpha) * mean_dir
                    + noise_scale * self.direction_sigma * float(rng.standard_normal())
                )
                vel = speed * np.array([math.cos(direction), math.sin(direction)])
                step = min(self.update_interval, self.horizon - t)
                nxt = pos + vel * step
                # Clamp and bounce if the leg would leave the area.
                for axis, limit in ((0, self.area.width), (1, self.area.height)):
                    if nxt[axis] < 0.0 or nxt[axis] > limit:
                        vel[axis] = -vel[axis]
                        nxt = pos + vel * step
                        nxt[axis] = min(max(nxt[axis], 0.0), limit)
                        direction = math.atan2(vel[1], vel[0])
                row_t.append(t)
                row_p.append(pos.copy())
                row_v.append(vel.copy())
                pos = nxt
                t += step
            times.append(row_t)
            points.append(row_p)
            velocities.append(row_v)
        return _pad_legs(times, points, velocities, self.horizon)

    def _steer_mean(self, pos: np.ndarray, direction: float, margin: float) -> float:
        """Mean direction, steered toward the area centre near the boundary."""
        near_edge = (
            pos[0] < margin
            or pos[0] > self.area.width - margin
            or pos[1] < margin
            or pos[1] > self.area.height - margin
        )
        if not near_edge:
            return direction
        centre = np.array([self.area.width / 2.0, self.area.height / 2.0])
        to_centre = centre - pos
        return math.atan2(to_centre[1], to_centre[0])
