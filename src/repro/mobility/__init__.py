"""Mobility models compiled to analytic piecewise-linear trajectories."""

from repro.mobility.base import Area, MobilityModel, TrajectorySet
from repro.mobility.gauss_markov import GaussMarkov
from repro.mobility.rpgm import ReferencePointGroupMobility
from repro.mobility.scenario_io import (
    ScenarioFileMobility,
    export_setdest,
    parse_setdest,
)
from repro.mobility.static import StaticPlacement
from repro.mobility.walk import RandomWalk
from repro.mobility.waypoint import RandomWaypoint

__all__ = [
    "Area",
    "MobilityModel",
    "TrajectorySet",
    "RandomWaypoint",
    "RandomWalk",
    "GaussMarkov",
    "ReferencePointGroupMobility",
    "StaticPlacement",
    "ScenarioFileMobility",
    "export_setdest",
    "parse_setdest",
]
