"""Random waypoint mobility (Camp, Boleng & Davies 2002), zero pause time.

This is the paper's mobility model (Section 5.1): each node repeatedly
picks a uniform destination in the area and travels there in a straight
line at a speed drawn per leg.  The paper reports the *average* moving
speed and (Section 5.2) treats the *maximal* speed as twice the average, so
per-leg speeds here are drawn uniformly from
``[speed_ratio * mean, (2 - speed_ratio) * mean]`` — mean preserved, max
just under twice the mean, and bounded away from zero to avoid the
classical RWP speed-decay pathology.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.base import Area, MobilityModel, TrajectorySet
from repro.util.errors import ConfigurationError
from repro.util.validate import check_positive, check_probability

__all__ = ["RandomWaypoint"]


class RandomWaypoint(MobilityModel):
    """Zero-pause random waypoint motion.

    Parameters
    ----------
    area, n_nodes, horizon:
        Deployment rectangle, node count, covered time range (s).
    mean_speed:
        Average moving speed in m/s (the paper sweeps 1..160).
    rng:
        Source of randomness (placement, destinations, per-leg speeds).
    speed_ratio:
        Lower speed bound as a fraction of *mean_speed* (default 0.1, so
        speeds are uniform in ``[0.1 v, 1.9 v]``).
    pause_time:
        Pause at each waypoint, s (paper uses 0).
    """

    def __init__(
        self,
        area: Area,
        n_nodes: int,
        horizon: float,
        mean_speed: float,
        rng: np.random.Generator,
        speed_ratio: float = 0.1,
        pause_time: float = 0.0,
    ) -> None:
        super().__init__(area, n_nodes, horizon)
        self.mean_speed = check_positive("mean_speed", mean_speed)
        check_probability("speed_ratio", speed_ratio)
        if speed_ratio >= 1.0:
            raise ConfigurationError(
                f"speed_ratio must be < 1 so the speed interval is non-empty, got {speed_ratio}"
            )
        self.speed_ratio = float(speed_ratio)
        if pause_time < 0:
            raise ConfigurationError(f"pause_time must be >= 0, got {pause_time}")
        self.pause_time = float(pause_time)
        self._rng = rng

    def _compile(self) -> TrajectorySet:
        rng = self._rng
        lo = self.speed_ratio * self.mean_speed
        hi = (2.0 - self.speed_ratio) * self.mean_speed
        times: list[list[float]] = []
        points: list[list[np.ndarray]] = []
        velocities: list[list[np.ndarray]] = []
        start_positions = self.area.sample(rng, self.n_nodes)
        for i in range(self.n_nodes):
            t = 0.0
            pos = start_positions[i]
            row_t: list[float] = []
            row_p: list[np.ndarray] = []
            row_v: list[np.ndarray] = []
            while t < self.horizon:
                dest = self.area.sample(rng, 1)[0]
                speed = float(rng.uniform(lo, hi))
                dist = float(np.hypot(*(dest - pos)))
                if dist < 1e-9:
                    # Degenerate draw: destination coincides with the node.
                    continue
                duration = dist / speed
                row_t.append(t)
                row_p.append(pos)
                row_v.append((dest - pos) / duration)
                t += duration
                pos = dest
                if self.pause_time > 0 and t < self.horizon:
                    row_t.append(t)
                    row_p.append(pos)
                    row_v.append(np.zeros(2))
                    t += self.pause_time
            times.append(row_t)
            points.append(row_p)
            velocities.append(row_v)
        return _pad_legs(times, points, velocities, self.horizon)


def _pad_legs(
    times: list[list[float]],
    points: list[list[np.ndarray]],
    velocities: list[list[np.ndarray]],
    horizon: float,
) -> TrajectorySet:
    """Pack ragged per-node leg lists into rectangular arrays.

    Rows are padded with zero-velocity legs pinned at the node's position at
    the horizon, so queries past the last real leg stay frozen and valid.
    """
    n = len(times)
    k = max(len(row) for row in times)
    leg_times = np.empty((n, k), dtype=np.float64)
    leg_points = np.empty((n, k, 2), dtype=np.float64)
    leg_velocities = np.zeros((n, k, 2), dtype=np.float64)
    for i in range(n):
        m = len(times[i])
        leg_times[i, :m] = times[i]
        leg_points[i, :m] = points[i]
        leg_velocities[i, :m] = velocities[i]
        if m < k:
            last_p = points[i][-1] + velocities[i][-1] * (horizon - times[i][-1])
            leg_times[i, m:] = horizon
            leg_points[i, m:] = last_p
    return TrajectorySet(leg_times, leg_points, leg_velocities, horizon)
