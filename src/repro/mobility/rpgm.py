"""Reference Point Group Mobility (RPGM; Hong et al. 1999).

The group-mobility model from the survey the paper cites for its mobility
methodology ([5], Camp, Boleng & Davies): nodes belong to groups; each
group's *logical centre* performs random waypoint motion, and members
jitter around reference points that move rigidly with the centre.
Platoon/convoy scenarios — where relative mobility inside a group is far
lower than global mobility — probe the buffer-zone law's dependence on
*relative* rather than absolute speed.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.base import Area, MobilityModel, TrajectorySet
from repro.mobility.waypoint import RandomWaypoint, _pad_legs
from repro.util.errors import ConfigurationError
from repro.util.validate import check_int_range, check_non_negative, check_positive

__all__ = ["ReferencePointGroupMobility"]


class ReferencePointGroupMobility(MobilityModel):
    """Groups of nodes moving with jittered group centres.

    Parameters
    ----------
    n_groups:
        Number of groups; nodes are dealt round-robin.
    group_speed:
        Mean speed of each group centre (random waypoint), m/s.
    jitter_radius:
        Maximum member offset from its reference point, metres.
    jitter_speed:
        Speed scale of the within-group random offsets, m/s (the
        *relative* mobility the buffer zone must absorb).
    jitter_interval:
        Seconds between member-offset re-draws.
    """

    def __init__(
        self,
        area: Area,
        n_nodes: int,
        horizon: float,
        rng: np.random.Generator,
        n_groups: int = 4,
        group_speed: float = 10.0,
        jitter_radius: float = 50.0,
        jitter_speed: float = 2.0,
        jitter_interval: float = 2.0,
    ) -> None:
        super().__init__(area, n_nodes, horizon)
        check_int_range("n_groups", n_groups, 1)
        if n_groups > n_nodes:
            raise ConfigurationError("cannot have more groups than nodes")
        self.n_groups = n_groups
        self.group_speed = check_positive("group_speed", group_speed)
        self.jitter_radius = check_non_negative("jitter_radius", jitter_radius)
        self.jitter_speed = check_non_negative("jitter_speed", jitter_speed)
        self.jitter_interval = check_positive("jitter_interval", jitter_interval)
        self._rng = rng

    def _compile(self) -> TrajectorySet:
        rng = self._rng
        # Group centres: random waypoint inside a margin-shrunk area so
        # jittered members stay inside the full area.
        margin = min(self.jitter_radius, 0.4 * min(self.area.width, self.area.height))
        inner = Area(
            max(self.area.width - 2 * margin, 1.0),
            max(self.area.height - 2 * margin, 1.0),
        )
        centres = RandomWaypoint(
            inner,
            self.n_groups,
            horizon=self.horizon,
            mean_speed=self.group_speed,
            rng=rng,
        ).trajectories

        group_of = [i % self.n_groups for i in range(self.n_nodes)]
        times: list[list[float]] = []
        points: list[list[np.ndarray]] = []
        velocities: list[list[np.ndarray]] = []
        n_steps = int(np.ceil(self.horizon / self.jitter_interval)) + 1
        for i in range(self.n_nodes):
            g = group_of[i]
            # Piecewise-linear member path: sample centre + offset at the
            # jitter cadence and connect with constant-velocity legs.
            offs = _offset_walk(
                rng, n_steps, self.jitter_radius, self.jitter_speed, self.jitter_interval
            )
            row_t: list[float] = []
            row_p: list[np.ndarray] = []
            row_v: list[np.ndarray] = []
            prev_pos = None
            for s in range(n_steps):
                t = min(s * self.jitter_interval, self.horizon)
                centre = centres.position(g, t) + margin
                pos = np.clip(
                    centre + offs[s],
                    [0.0, 0.0],
                    [self.area.width, self.area.height],
                )
                if prev_pos is not None:
                    dt = t - row_t[-1]
                    vel = (pos - prev_pos) / dt if dt > 0 else np.zeros(2)
                    row_v.append(vel)
                row_t.append(t)
                row_p.append(pos)
                prev_pos = pos
                if t >= self.horizon:
                    break
            row_v.append(np.zeros(2))
            times.append(row_t)
            points.append(row_p)
            velocities.append(row_v)
        return _pad_legs(times, points, velocities, self.horizon)


def _offset_walk(
    rng: np.random.Generator,
    n_steps: int,
    radius: float,
    speed: float,
    interval: float,
) -> np.ndarray:
    """Bounded random walk of member offsets around the reference point."""
    offs = np.zeros((n_steps, 2))
    if radius == 0.0:
        return offs
    # initial offset uniform in the disk
    angle = rng.uniform(0, 2 * np.pi)
    r = radius * np.sqrt(rng.uniform())
    offs[0] = [r * np.cos(angle), r * np.sin(angle)]
    step_scale = speed * interval
    for s in range(1, n_steps):
        step = rng.normal(0.0, step_scale / np.sqrt(2.0), size=2)
        candidate = offs[s - 1] + step
        norm = float(np.hypot(*candidate))
        if norm > radius:
            candidate *= radius / norm
        offs[s] = candidate
    return offs
