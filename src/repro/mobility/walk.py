"""Random-walk (random direction) mobility with reflecting boundaries.

Each node repeatedly picks a uniform direction, walks at a fixed speed for
an exponentially distributed epoch, and reflects specularly off the area
boundary.  Included alongside the paper's random waypoint model so the
harness can check that the mobility-management conclusions are not an
artifact of one mobility pattern.
"""

from __future__ import annotations

import math

import numpy as np

from repro.mobility.base import Area, MobilityModel, TrajectorySet
from repro.mobility.waypoint import _pad_legs
from repro.util.validate import check_positive

__all__ = ["RandomWalk"]


class RandomWalk(MobilityModel):
    """Random direction walk with specular boundary reflection.

    Parameters
    ----------
    speed:
        Constant walking speed, m/s (every node's instantaneous speed).
    mean_epoch:
        Mean duration between direction changes, s.
    """

    def __init__(
        self,
        area: Area,
        n_nodes: int,
        horizon: float,
        speed: float,
        rng: np.random.Generator,
        mean_epoch: float = 5.0,
    ) -> None:
        super().__init__(area, n_nodes, horizon)
        self.speed = check_positive("speed", speed)
        self.mean_epoch = check_positive("mean_epoch", mean_epoch)
        self._rng = rng

    def _compile(self) -> TrajectorySet:
        rng = self._rng
        times: list[list[float]] = []
        points: list[list[np.ndarray]] = []
        velocities: list[list[np.ndarray]] = []
        start_positions = self.area.sample(rng, self.n_nodes)
        for i in range(self.n_nodes):
            t = 0.0
            pos = start_positions[i].copy()
            row_t: list[float] = []
            row_p: list[np.ndarray] = []
            row_v: list[np.ndarray] = []
            theta = float(rng.uniform(0.0, 2.0 * math.pi))
            vel = self.speed * np.array([math.cos(theta), math.sin(theta)])
            epoch_left = float(rng.exponential(self.mean_epoch))
            while t < self.horizon:
                hit = _time_to_boundary(pos, vel, self.area)
                step = min(epoch_left, hit)
                row_t.append(t)
                row_p.append(pos.copy())
                row_v.append(vel.copy())
                pos = pos + vel * step
                t += step
                if hit <= epoch_left:
                    # Reflect off whichever wall was reached (both, in a corner).
                    if pos[0] <= 1e-9 or pos[0] >= self.area.width - 1e-9:
                        vel = vel * np.array([-1.0, 1.0])
                    if pos[1] <= 1e-9 or pos[1] >= self.area.height - 1e-9:
                        vel = vel * np.array([1.0, -1.0])
                    epoch_left -= step
                    if epoch_left <= 1e-9:
                        epoch_left = float(rng.exponential(self.mean_epoch))
                else:
                    theta = float(rng.uniform(0.0, 2.0 * math.pi))
                    vel = self.speed * np.array([math.cos(theta), math.sin(theta)])
                    epoch_left = float(rng.exponential(self.mean_epoch))
                pos[0] = min(max(pos[0], 0.0), self.area.width)
                pos[1] = min(max(pos[1], 0.0), self.area.height)
            times.append(row_t)
            points.append(row_p)
            velocities.append(row_v)
        return _pad_legs(times, points, velocities, self.horizon)


def _time_to_boundary(pos: np.ndarray, vel: np.ndarray, area: Area) -> float:
    """Time until the ray ``pos + t * vel`` first exits the area (inf if never)."""
    t_hit = math.inf
    for axis, limit in ((0, area.width), (1, area.height)):
        v = vel[axis]
        if v > 1e-12:
            t_hit = min(t_hit, (limit - pos[axis]) / v)
        elif v < -1e-12:
            t_hit = min(t_hit, (0.0 - pos[axis]) / v)
    return max(t_hit, 1e-9)
