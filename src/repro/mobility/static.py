"""Static placement: nodes never move.

The degenerate mobility model every topology control proof assumes; used as
the control case in experiments and the base case in property tests (on a
static network all localized protocols must preserve connectivity exactly).
"""

from __future__ import annotations

import numpy as np

from repro.mobility.base import Area, MobilityModel, TrajectorySet
from repro.util.errors import ConfigurationError

__all__ = ["StaticPlacement"]


class StaticPlacement(MobilityModel):
    """Nodes stay at their initial (uniform or user-supplied) positions.

    Parameters
    ----------
    positions:
        Optional explicit ``(n, 2)`` placement; if omitted, *rng* draws a
        uniform placement over *area*.
    """

    def __init__(
        self,
        area: Area,
        n_nodes: int,
        horizon: float,
        rng: np.random.Generator | None = None,
        positions: np.ndarray | None = None,
    ) -> None:
        super().__init__(area, n_nodes, horizon)
        if positions is None:
            if rng is None:
                raise ConfigurationError("StaticPlacement needs either rng or positions")
            self._positions = area.sample(rng, n_nodes)
        else:
            pts = np.asarray(positions, dtype=np.float64)
            if pts.shape != (n_nodes, 2):
                raise ConfigurationError(
                    f"positions must have shape ({n_nodes}, 2), got {pts.shape}"
                )
            if not bool(area.contains(pts).all()):
                raise ConfigurationError("some positions fall outside the area")
            self._positions = pts.copy()

    def _compile(self) -> TrajectorySet:
        n = self.n_nodes
        return TrajectorySet(
            leg_times=np.zeros((n, 1)),
            leg_points=self._positions[:, np.newaxis, :],
            leg_velocities=np.zeros((n, 1, 2)),
            horizon=self.horizon,
        )
