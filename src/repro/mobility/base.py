"""Mobility substrate: analytic piecewise-linear trajectories.

Every mobility model in this package (random waypoint, random walk,
Gauss-Markov, static) compiles node motion into a :class:`TrajectorySet` —
per-node sequences of constant-velocity legs covering the whole simulation
horizon.  Positions at *any* time are then an O(1) vectorized lookup, which
is what lets the simulator sample 10 Hz snapshots and per-Hello positions
without time-stepping the world.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigurationError

__all__ = ["Area", "TrajectorySet", "MobilityModel"]


@dataclass(frozen=True)
class Area:
    """Rectangular deployment area ``[0, width] x [0, height]`` in metres."""

    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError(
                f"area dimensions must be positive, got {self.width} x {self.height}"
            )

    def contains(self, points: np.ndarray, tol: float = 1e-6) -> np.ndarray:
        """Boolean mask of points inside the area (with tolerance *tol*)."""
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return (
            (pts[:, 0] >= -tol)
            & (pts[:, 0] <= self.width + tol)
            & (pts[:, 1] >= -tol)
            & (pts[:, 1] <= self.height + tol)
        )

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Uniformly sample *n* points inside the area."""
        pts = rng.random((n, 2))
        pts[:, 0] *= self.width
        pts[:, 1] *= self.height
        return pts

    @property
    def diagonal(self) -> float:
        """Length of the area diagonal (an upper bound on any distance)."""
        return float(np.hypot(self.width, self.height))


class TrajectorySet:
    """Constant-velocity legs for ``n`` nodes over ``[0, horizon]``.

    Parameters
    ----------
    leg_times:
        ``(n, k)`` array of leg start times; ``leg_times[:, 0] == 0`` and
        rows are non-decreasing.  Rows may be padded by repeating the final
        time (padded legs must carry zero velocity).
    leg_points:
        ``(n, k, 2)`` positions at each leg start.
    leg_velocities:
        ``(n, k, 2)`` constant velocity during each leg, m/s.
    horizon:
        End of the covered time range, seconds.
    """

    def __init__(
        self,
        leg_times: np.ndarray,
        leg_points: np.ndarray,
        leg_velocities: np.ndarray,
        horizon: float,
    ) -> None:
        self.leg_times = np.ascontiguousarray(leg_times, dtype=np.float64)
        self.leg_points = np.ascontiguousarray(leg_points, dtype=np.float64)
        self.leg_velocities = np.ascontiguousarray(leg_velocities, dtype=np.float64)
        self.horizon = float(horizon)
        n, k = self.leg_times.shape
        if self.leg_points.shape != (n, k, 2) or self.leg_velocities.shape != (n, k, 2):
            raise ConfigurationError(
                "leg arrays are inconsistent: "
                f"times {self.leg_times.shape}, points {self.leg_points.shape}, "
                f"velocities {self.leg_velocities.shape}"
            )
        if np.any(self.leg_times[:, 0] != 0.0):
            raise ConfigurationError("every trajectory must start at t = 0")
        if np.any(np.diff(self.leg_times, axis=1) < 0):
            raise ConfigurationError("leg start times must be non-decreasing")
        self._row = np.arange(n)

    @property
    def n_nodes(self) -> int:
        """Number of nodes covered by this trajectory set."""
        return self.leg_times.shape[0]

    def _leg_index(self, t: float) -> np.ndarray:
        # Index of the active leg per node: the last leg starting at or
        # before t.  (leg_times <= t).sum() is a vectorized searchsorted
        # across rows; k is small (tens of legs) so the O(n*k) scan wins
        # over per-row binary searches.
        idx = (self.leg_times <= t).sum(axis=1) - 1
        return np.clip(idx, 0, self.leg_times.shape[1] - 1)

    def positions(self, t: float) -> np.ndarray:
        """``(n, 2)`` positions of all nodes at time *t* (clamped to horizon)."""
        t = float(np.clip(t, 0.0, self.horizon))
        idx = self._leg_index(t)
        t0 = self.leg_times[self._row, idx]
        p0 = self.leg_points[self._row, idx]
        v = self.leg_velocities[self._row, idx]
        return p0 + v * (t - t0)[:, np.newaxis]

    def position(self, node: int, t: float) -> np.ndarray:
        """Position of a single *node* at time *t*."""
        t = float(np.clip(t, 0.0, self.horizon))
        row_times = self.leg_times[node]
        idx = int(np.searchsorted(row_times, t, side="right")) - 1
        idx = max(0, min(idx, row_times.shape[0] - 1))
        return self.leg_points[node, idx] + self.leg_velocities[node, idx] * (
            t - row_times[idx]
        )

    def positions_at(self, t: float, nodes: np.ndarray) -> np.ndarray:
        """``(len(nodes), 2)`` positions of a node subset at time *t*.

        Runs the exact per-element arithmetic of :meth:`positions` on the
        selected rows only — ``positions_at(t, nodes)`` is bit-identical
        to ``positions(t)[nodes]`` — so subset evaluation (e.g. exact
        receiver filtering in the batched Hello pipeline) never pays the
        full ``(n, k)`` leg scan.
        """
        t = float(np.clip(t, 0.0, self.horizon))
        nodes = np.asarray(nodes, dtype=np.intp)
        times = self.leg_times[nodes]
        idx = (times <= t).sum(axis=1) - 1
        idx = np.clip(idx, 0, times.shape[1] - 1)
        rows = np.arange(nodes.shape[0])
        t0 = times[rows, idx]
        p0 = self.leg_points[nodes, idx]
        v = self.leg_velocities[nodes, idx]
        return p0 + v * (t - t0)[:, np.newaxis]

    def velocities(self, t: float) -> np.ndarray:
        """``(n, 2)`` instantaneous velocities at time *t*."""
        t = float(np.clip(t, 0.0, self.horizon))
        idx = self._leg_index(t)
        return self.leg_velocities[self._row, idx].copy()

    def max_speed(self) -> float:
        """Largest instantaneous speed over all nodes and legs."""
        speeds = np.sqrt(
            np.einsum("nkc,nkc->nk", self.leg_velocities, self.leg_velocities)
        )
        return float(speeds.max(initial=0.0))


class MobilityModel(ABC):
    """A mobility model: node count, area, and a compiled trajectory set."""

    def __init__(self, area: Area, n_nodes: int, horizon: float) -> None:
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        self.area = area
        self.n_nodes = int(n_nodes)
        self.horizon = float(horizon)
        self._trajectories: TrajectorySet | None = None

    @abstractmethod
    def _compile(self) -> TrajectorySet:
        """Build the trajectory set for this model (called once, lazily)."""

    @property
    def trajectories(self) -> TrajectorySet:
        """The compiled trajectory set (built on first access)."""
        if self._trajectories is None:
            self._trajectories = self._compile()
        return self._trajectories

    def positions(self, t: float) -> np.ndarray:
        """``(n, 2)`` positions of all nodes at time *t*."""
        return self.trajectories.positions(t)

    def position(self, node: int, t: float) -> np.ndarray:
        """Position of one node at time *t*."""
        return self.trajectories.position(node, t)

    def positions_at(self, t: float, nodes: np.ndarray) -> np.ndarray:
        """Positions of a node subset at time *t* (``positions(t)[nodes]``)."""
        return self.trajectories.positions_at(t, nodes)

    def max_speed(self) -> float:
        """Upper bound on any node's instantaneous speed, m/s."""
        return self.trajectories.max_speed()
