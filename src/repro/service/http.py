"""A zero-dependency asyncio HTTP/1.1 mini-router.

Just enough HTTP for the experiment service — no third-party framework
in the base image, and the endpoints need only:

- request-line + header parsing with a bounded ``Content-Length`` body;
- path templates with ``{placeholder}`` segments
  (``/campaigns/{campaign_id}/events``);
- fixed JSON responses and **chunked** streaming responses (the live
  telemetry feed), written incrementally as an async iterator yields.

Connections are one-shot (``Connection: close``): the clients here are
the ``repro submit`` CLI, tests, and curl — none of which need
keep-alive, and one-shot semantics keep the state machine trivial.
"""

from __future__ import annotations

import asyncio
import json
import re
from collections.abc import AsyncIterator, Awaitable, Callable
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

__all__ = ["Request", "Response", "Router", "serve"]

#: Refuse request bodies beyond this (the service only ever receives
#: campaign documents, which are tiny).
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes
    params: dict[str, str] = field(default_factory=dict)

    def json(self) -> dict:
        """Decode the body as a JSON object (400 on anything else)."""
        try:
            doc = json.loads(self.body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(doc, dict):
            raise HttpError(400, "request body must be a JSON object")
        return doc


@dataclass
class Response:
    """One response: fixed bytes, or a chunked stream."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    stream: AsyncIterator[bytes] | None = None

    @staticmethod
    def json(document: object, status: int = 200) -> "Response":
        """A JSON response (sorted keys, trailing newline)."""
        payload = json.dumps(document, sort_keys=True, indent=2) + "\n"
        return Response(status=status, body=payload.encode("utf-8"))

    @staticmethod
    def text(message: str, status: int = 200) -> "Response":
        """A plain-text response."""
        return Response(
            status=status,
            body=message.encode("utf-8"),
            content_type="text/plain; charset=utf-8",
        )


class HttpError(Exception):
    """Raise inside a handler to produce a JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


Handler = Callable[[Request], Awaitable[Response]]


def _compile(template: str) -> re.Pattern[str]:
    pattern = re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", template)
    return re.compile(f"^{pattern}$")


class Router:
    """Method + path-template dispatch table."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, re.Pattern[str], Handler]] = []

    def route(self, method: str, template: str):
        """Decorator registering an async handler for METHOD template."""

        def register(handler: Handler) -> Handler:
            self._routes.append((method.upper(), _compile(template), handler))
            return handler

        return register

    def resolve(self, method: str, path: str) -> tuple[Handler, dict[str, str]]:
        """Match a request; raises 404 (no path) or 405 (wrong method)."""
        path_matched = False
        for route_method, pattern, handler in self._routes:
            match = pattern.match(path)
            if match is None:
                continue
            path_matched = True
            if route_method == method.upper():
                return handler, match.groupdict()
        if path_matched:
            raise HttpError(405, f"method {method} not allowed for {path}")
        raise HttpError(404, f"no route for {path}")


async def _read_request(reader: asyncio.StreamReader) -> Request | None:
    request_line = await reader.readline()
    if not request_line:
        return None
    try:
        method, target, _version = request_line.decode("latin-1").split(None, 2)
    except ValueError:
        raise HttpError(400, "malformed request line")
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise HttpError(400, f"request body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    parts = urlsplit(target)
    query = dict(parse_qsl(parts.query))
    return Request(
        method=method.upper(),
        path=parts.path,
        query=query,
        headers=headers,
        body=body,
    )


async def _write_response(
    writer: asyncio.StreamWriter, response: Response
) -> None:
    reason = _REASONS.get(response.status, "Unknown")
    head = [f"HTTP/1.1 {response.status} {reason}"]
    head.append(f"Content-Type: {response.content_type}")
    head.append("Connection: close")
    if response.stream is None:
        head.append(f"Content-Length: {len(response.body)}")
        head.append("")
        head.append("")
        writer.write("\r\n".join(head).encode("latin-1") + response.body)
        await writer.drain()
        return
    head.append("Transfer-Encoding: chunked")
    head.append("")
    head.append("")
    writer.write("\r\n".join(head).encode("latin-1"))
    await writer.drain()
    async for chunk in response.stream:
        if not chunk:
            continue
        writer.write(f"{len(chunk):x}\r\n".encode("latin-1"))
        writer.write(chunk + b"\r\n")
        await writer.drain()
    writer.write(b"0\r\n\r\n")
    await writer.drain()


def _error_response(exc: HttpError) -> Response:
    return Response.json(
        {"error": exc.message, "status": exc.status}, status=exc.status
    )


async def _handle_connection(
    router: Router,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        try:
            request = await _read_request(reader)
            if request is None:
                return
            handler, params = router.resolve(request.method, request.path)
            request.params = params
            response = await handler(request)
        except HttpError as exc:
            response = _error_response(exc)
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        except Exception as exc:  # noqa: BLE001 - boundary: report, don't die
            response = Response.json(
                {"error": f"{type(exc).__name__}: {exc}", "status": 500},
                status=500,
            )
        try:
            await _write_response(writer, response)
        except (ConnectionError, asyncio.IncompleteReadError):
            return
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass


async def serve(
    router: Router, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Start serving *router*; returns the listening server.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.sockets[0].getsockname()[1]`` (tests and the loopback
    client do).
    """
    return await asyncio.start_server(
        lambda r, w: _handle_connection(router, r, w), host=host, port=port
    )
