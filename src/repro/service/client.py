"""A blocking stdlib client for the experiment service.

``repro submit`` and the endpoint tests drive the service through this
(``http.client``, no third-party HTTP stack).  The streaming reader
understands chunked transfer, so :meth:`ServiceClient.events` can tail
the live telemetry feed line by line.
"""

from __future__ import annotations

import json
import time
from collections.abc import Iterator
from http.client import HTTPConnection
from urllib.parse import urlsplit

from repro.util.errors import OrchestrationError

__all__ = ["ServiceClient", "ServiceError"]

#: Terminal campaign states (anything else is still moving).
TERMINAL_STATES = {"done", "failed", "cancelled", "interrupted"}


class ServiceError(OrchestrationError):
    """An experiment-service request failed (non-2xx response)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talk to a running experiment service at *base_url*."""

    def __init__(self, base_url: str, timeout: float = 600.0) -> None:
        parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if parts.scheme != "http":
            raise ServiceError(0, f"only http:// is supported, got {base_url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.timeout = timeout

    # ---------------------------------------------------------------- #

    def _request(
        self, method: str, path: str, document: dict | None = None
    ) -> dict:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = (
                json.dumps(document).encode("utf-8")
                if document is not None
                else None
            )
            conn.request(
                method, path, body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = conn.getresponse()
            payload = response.read().decode("utf-8")
            if response.status >= 400:
                try:
                    message = json.loads(payload).get("error", payload)
                except json.JSONDecodeError:
                    message = payload
                raise ServiceError(response.status, message)
            return json.loads(payload) if payload else {}
        finally:
            conn.close()

    # ---------------------------------------------------------------- #

    def health(self) -> dict:
        """``GET /healthz`` — liveness and campaign count."""
        return self._request("GET", "/healthz")

    def submit(self, document: dict) -> dict:
        """Submit a campaign document; returns the created campaign."""
        return self._request("POST", "/campaigns", document)

    def campaigns(self) -> list[dict]:
        """``GET /campaigns`` — every campaign's status document."""
        return self._request("GET", "/campaigns")["campaigns"]

    def campaign(self, campaign_id: str) -> dict:
        """``GET /campaigns/{id}`` — one campaign's status document."""
        return self._request("GET", f"/campaigns/{campaign_id}")

    def cancel(self, campaign_id: str) -> dict:
        """``DELETE /campaigns/{id}`` — cooperative cancel."""
        return self._request("DELETE", f"/campaigns/{campaign_id}")

    def wait(
        self, campaign_id: str, timeout: float = 600.0, poll: float = 0.1
    ) -> dict:
        """Poll until the campaign reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.campaign(campaign_id)
            if doc["state"] in TERMINAL_STATES:
                return doc
            if time.monotonic() > deadline:
                raise ServiceError(
                    0, f"campaign {campaign_id} still {doc['state']!r} "
                    f"after {timeout:g}s"
                )
            time.sleep(poll)

    def export(self, campaign_id: str, deterministic: bool = True) -> bytes:
        """Fetch the campaign's RunStore JSONL export."""
        flag = "1" if deterministic else "0"
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request(
                "GET", f"/campaigns/{campaign_id}/export?deterministic={flag}"
            )
            response = conn.getresponse()
            payload = response.read()
            if response.status >= 400:
                raise ServiceError(response.status, payload.decode("utf-8"))
            return payload
        finally:
            conn.close()

    def events(
        self, campaign_id: str, max_lines: int | None = None
    ) -> Iterator[str]:
        """Tail the live telemetry feed; yields JSONL lines as they land.

        Ends when the server closes the stream (campaign finished) or
        after *max_lines* lines — whichever comes first.
        """
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/campaigns/{campaign_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raise ServiceError(
                    response.status, response.read().decode("utf-8")
                )
            yielded = 0
            # http.client de-chunks transparently; readline() returns
            # b"" only at end of stream.
            while True:
                line = response.readline()
                if not line:
                    return
                text = line.decode("utf-8").rstrip("\n")
                if not text:
                    continue
                yield text
                yielded += 1
                if max_lines is not None and yielded >= max_lines:
                    return
        finally:
            conn.close()
