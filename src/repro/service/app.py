"""The experiment service: campaigns over HTTP, backed by the fabric.

:class:`ExperimentService` owns a data directory of per-campaign
:class:`~repro.orchestrator.store.RunStore` databases and runs each
submitted campaign on its own thread through an
:class:`~repro.orchestrator.runner.OrchestrationContext` — so every
guarantee of the orchestration layer (content-hashed units, idempotent
checkpointing, resume, retry/quarantine, bit-identical results on any
backend) holds for service campaigns too.

Endpoints (all JSON unless noted):

- ``POST /campaigns`` — submit ``{"specs": [...], "repetitions": N,
  "base_seed": S, "backend": "local"|"inprocess"|"queue", ...}``;
  returns 201 with the campaign document.
- ``GET /campaigns`` / ``GET /campaigns/{id}`` — status.
- ``GET /campaigns/{id}/events`` — **chunked** live feed of
  ``repro-telemetry/1`` JSONL blocks: one header-to-summary block per
  progress snapshot while units settle, then a final block; each block
  validates against :mod:`repro.telemetry.schema` on its own.
- ``GET /campaigns/{id}/export?deterministic=1`` — the RunStore JSONL
  export (deterministic mode omits timestamps and orders by unit ID, so
  it is byte-comparable across backends and machines).
- ``DELETE /campaigns/{id}`` — cooperative cancel: in-flight units
  finish and checkpoint, the campaign ends in ``cancelled``
  (:class:`~repro.orchestrator.runner.CampaignInterrupted` semantics —
  resubmitting resumes from the store).

Thread-safety model: the campaign thread is the *only* writer of its
context, store, and telemetry; it publishes immutable
:class:`~repro.telemetry.core.TelemetrySummary` snapshots (plus plain
tallies) through atomic attribute assignment, and the event loop reads
only those snapshots.  Export/status handlers open their own read
connection to the WAL store, never the campaign thread's.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.experiment import ExperimentSpec
from repro.service.http import HttpError, Request, Response, Router
from repro.telemetry.core import Telemetry, TelemetrySummary
from repro.telemetry.export import SCHEMA as TELEMETRY_SCHEMA
from repro.telemetry.runtime import use_telemetry

__all__ = ["CampaignRecord", "ExperimentService", "summary_records"]

#: Campaign states (terminal: done / failed / cancelled / interrupted).
STATES = (
    "pending", "running", "done", "failed", "cancelled", "interrupted",
)


def summary_records(
    summary: TelemetrySummary, meta: dict | None = None
) -> list[dict]:
    """Render a frozen summary as one ``repro-telemetry/1`` block.

    The same record shapes :func:`repro.telemetry.export.write_jsonl`
    emits, built from a snapshot instead of a live collector — which is
    what lets the events endpoint stream schema-valid blocks without
    touching the campaign thread's mutable telemetry.
    """
    records: list[dict] = [
        {"record": "header", "schema": TELEMETRY_SCHEMA, "meta": dict(meta or {})}
    ]
    for name, value in summary.counters:
        records.append(
            {"record": "metric", "kind": "counter", "name": name, "value": value}
        )
    for name, value in summary.gauges:
        records.append(
            {"record": "metric", "kind": "gauge", "name": name, "value": value}
        )
    for name, stats in summary.histograms:
        records.append(
            {
                "record": "metric",
                "kind": "histogram",
                "name": name,
                "value": dict(stats),
            }
        )
    for name, stats in summary.spans:
        records.append({"record": "span", "name": name, **dict(stats)})
    records.append(
        {
            "record": "summary",
            "events_recorded": summary.events_recorded,
            "events_dropped": summary.events_dropped,
            "event_counts": dict(summary.event_counts),
        }
    )
    return records


def _render_block(summary: TelemetrySummary, meta: dict) -> bytes:
    lines = [
        json.dumps(record, sort_keys=True)
        for record in summary_records(summary, meta)
    ]
    return ("\n".join(lines) + "\n").encode("utf-8")


@dataclass
class CampaignRecord:
    """One submitted campaign and its live/terminal state."""

    campaign_id: str
    specs: list[ExperimentSpec]
    repetitions: int
    base_seed: int
    backend: str
    workers: int
    retries: int
    unit_timeout: float | None
    max_units: int | None
    resume: bool
    store_path: Path
    state: str = "pending"
    error: str | None = None
    # Published by the campaign thread, read by the event loop:
    snapshot: TelemetrySummary | None = None
    snapshot_seq: int = 0
    tallies: dict = field(default_factory=dict)
    aggregates: list[dict] = field(default_factory=list)
    finished: threading.Event = field(default_factory=threading.Event)
    thread: threading.Thread | None = None
    _context: object = None  # OrchestrationContext, set by the thread

    # ---------------------------------------------------------------- #

    def start(self) -> None:
        """Launch the campaign thread (the record's sole writer)."""
        self.thread = threading.Thread(
            target=self._run, name=f"repro-campaign-{self.campaign_id}",
            daemon=True,
        )
        self.state = "running"
        self.thread.start()

    def cancel(self) -> None:
        """Cooperatively stop the campaign (no-op once terminal)."""
        context = self._context
        if context is not None:
            context.cancel()
        elif self.state == "pending":  # pragma: no cover - tiny startup race
            self.state = "cancelled"

    def _publish(self, context, telemetry: Telemetry) -> None:
        self.tallies = {
            "executed_units": context.executed_units,
            "resumed_units": context.resumed_units,
            "quarantined_units": len(context.quarantined),
        }
        self.snapshot = telemetry.summary()
        self.snapshot_seq += 1

    def _run(self) -> None:
        # Everything that touches SQLite or mutable telemetry lives on
        # this thread; the event loop only sees published snapshots.
        from repro.orchestrator.runner import (
            CampaignInterrupted,
            OrchestrationContext,
        )
        from repro.orchestrator.store import RunStore

        telemetry = Telemetry()
        store = RunStore(self.store_path)
        context = OrchestrationContext(
            store=store,
            workers=self.workers,
            retries=self.retries,
            unit_timeout=self.unit_timeout,
            resume=self.resume,
            max_units=self.max_units,
            backend=self.backend,
            on_progress=lambda ctx: self._publish(ctx, telemetry),
        )
        self._context = context
        try:
            with use_telemetry(telemetry), context:
                grouped = context.run_spec_batch(
                    self.specs, self.repetitions, self.base_seed
                )
            self.aggregates = [
                {
                    "spec": spec.describe(),
                    "runs": len(runs),
                    "connectivity": (
                        sum(r.connectivity_ratio for r in runs) / len(runs)
                    ),
                }
                for spec, runs in zip(self.specs, grouped)
            ]
            self.state = "done"
        except CampaignInterrupted:
            self.state = "cancelled" if context.cancelled else "interrupted"
        except Exception as exc:  # noqa: BLE001 - boundary: report, don't die
            self.state = "failed"
            self.error = f"{type(exc).__name__}: {exc}"
        finally:
            self._publish(context, telemetry)
            self._context = None
            store.close()
            self.finished.set()

    # ---------------------------------------------------------------- #

    def as_dict(self) -> dict:
        """JSON-ready status document (the campaign GET body)."""
        doc = {
            "id": self.campaign_id,
            "state": self.state,
            "backend": self.backend,
            "workers": self.workers,
            "specs": len(self.specs),
            "repetitions": self.repetitions,
            "base_seed": self.base_seed,
            "store": str(self.store_path),
            **self.tallies,
        }
        if self.error:
            doc["error"] = self.error
        if self.aggregates:
            doc["aggregates"] = self.aggregates
        return doc


class ExperimentService:
    """Campaign registry + HTTP handlers (see module docstring)."""

    def __init__(
        self,
        data_dir: str | Path | None = None,
        default_backend: str = "local",
        default_workers: int = 1,
    ) -> None:
        self.data_dir = Path(
            data_dir
            if data_dir is not None
            else tempfile.mkdtemp(prefix="repro-service-")
        )
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.default_backend = default_backend
        self.default_workers = default_workers
        self._campaigns: dict[str, CampaignRecord] = {}
        self._seq = 0
        self.router = self._build_router()

    # ---------------------------------------------------------------- #
    # campaign registry (usable directly, without HTTP — tests do)

    def submit(self, document: dict) -> CampaignRecord:
        """Validate a campaign document, persist-register it, start it."""
        specs_doc = document.get("specs")
        if not isinstance(specs_doc, list) or not specs_doc:
            raise HttpError(400, "campaign needs a non-empty 'specs' list")
        try:
            specs = [ExperimentSpec.from_dict(d) for d in specs_doc]
        except Exception as exc:  # noqa: BLE001 - surface the parse error
            raise HttpError(400, f"bad experiment spec: {exc}")
        from repro.orchestrator.backend import available_backends

        backend = document.get("backend", self.default_backend)
        if backend not in available_backends():
            raise HttpError(
                400,
                f"unknown backend {backend!r}; "
                f"available: {', '.join(available_backends())}",
            )
        self._seq += 1
        campaign_id = f"c{self._seq:04d}"
        # A campaign may name its store file (within the data dir) so a
        # later submission can resume a cancelled/interrupted campaign's
        # checkpoint; default is an isolated per-campaign store.
        store_name = str(document.get("store", f"{campaign_id}.db"))
        if "/" in store_name or store_name.startswith("."):
            raise HttpError(400, "store must be a plain filename")
        record = CampaignRecord(
            campaign_id=campaign_id,
            specs=specs,
            repetitions=int(document.get("repetitions", 1)),
            base_seed=int(document.get("base_seed", 0)),
            backend=backend,
            workers=int(document.get("workers", self.default_workers)),
            retries=int(document.get("retries", 1)),
            unit_timeout=document.get("unit_timeout"),
            max_units=document.get("max_units"),
            resume=bool(document.get("resume", True)),
            store_path=self.data_dir / store_name,
        )
        if record.repetitions < 1:
            raise HttpError(400, "repetitions must be >= 1")
        self._campaigns[campaign_id] = record
        record.start()
        return record

    def get(self, campaign_id: str) -> CampaignRecord:
        """Look up a campaign; 404 :class:`HttpError` when unknown."""
        record = self._campaigns.get(campaign_id)
        if record is None:
            raise HttpError(404, f"no campaign {campaign_id!r}")
        return record

    # ---------------------------------------------------------------- #
    # HTTP handlers

    def _build_router(self) -> Router:
        router = Router()

        @router.route("GET", "/healthz")
        async def healthz(request: Request) -> Response:
            return Response.json({"status": "ok", "campaigns": len(self._campaigns)})

        @router.route("POST", "/campaigns")
        async def create(request: Request) -> Response:
            record = self.submit(request.json())
            return Response.json(record.as_dict(), status=201)

        @router.route("GET", "/campaigns")
        async def index(request: Request) -> Response:
            return Response.json(
                {"campaigns": [c.as_dict() for c in self._campaigns.values()]}
            )

        @router.route("GET", "/campaigns/{campaign_id}")
        async def status(request: Request) -> Response:
            return Response.json(
                self.get(request.params["campaign_id"]).as_dict()
            )

        @router.route("DELETE", "/campaigns/{campaign_id}")
        async def cancel(request: Request) -> Response:
            record = self.get(request.params["campaign_id"])
            record.cancel()
            return Response.json({"id": record.campaign_id, "state": record.state})

        @router.route("GET", "/campaigns/{campaign_id}/events")
        async def events(request: Request) -> Response:
            record = self.get(request.params["campaign_id"])
            return Response(
                stream=self._event_stream(record),
                content_type="application/jsonl; charset=utf-8",
            )

        @router.route("GET", "/campaigns/{campaign_id}/export")
        async def export(request: Request) -> Response:
            record = self.get(request.params["campaign_id"])
            deterministic = request.query.get("deterministic", "1") != "0"
            if not record.store_path.exists():
                raise HttpError(409, "campaign has not started its store yet")
            from repro.orchestrator.store import RunStore

            # A fresh read connection: WAL lets this coexist with the
            # campaign thread's writer.
            fd, tmp = tempfile.mkstemp(suffix=".jsonl")
            os.close(fd)
            try:
                with RunStore(record.store_path) as store:
                    store.export_jsonl(tmp, deterministic=deterministic)
                with open(tmp, "rb") as fh:
                    payload = fh.read()
            finally:
                os.unlink(tmp)
            return Response(
                body=payload, content_type="application/jsonl; charset=utf-8"
            )

        return router

    async def _event_stream(self, record: CampaignRecord):
        """Yield one telemetry block per published snapshot, then stop.

        Polls the atomically-published ``(snapshot_seq, snapshot)`` pair;
        ends after the terminal block (the campaign thread always
        publishes once more in its ``finally``).
        """
        last_seq = 0
        while True:
            seq, snapshot = record.snapshot_seq, record.snapshot
            if seq > last_seq and snapshot is not None:
                last_seq = seq
                yield _render_block(
                    snapshot,
                    meta={
                        "campaign": record.campaign_id,
                        "sequence": seq,
                        "state": record.state,
                    },
                )
            if record.finished.is_set() and last_seq >= record.snapshot_seq:
                return
            await asyncio.sleep(0.05)
