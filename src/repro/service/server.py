"""Run an :class:`ExperimentService` — foreground or background thread.

:func:`run_service` is the ``repro serve`` entry point (blocks until
interrupted).  :class:`BackgroundServer` runs the same server on a
dedicated event-loop thread and reports the bound port — what the test
suite and the CI smoke use to drive a real loopback server in-process.
"""

from __future__ import annotations

import asyncio
import threading

from repro.service.app import ExperimentService
from repro.service.http import serve

__all__ = ["BackgroundServer", "run_service"]


def run_service(
    service: ExperimentService, host: str = "127.0.0.1", port: int = 8642
) -> int:
    """Serve until interrupted (Ctrl-C); returns an exit code."""

    async def main() -> None:
        server = await serve(service.router, host=host, port=port)
        bound = server.sockets[0].getsockname()
        print(f"[serve] listening on http://{bound[0]}:{bound[1]}")
        print(f"[serve] data dir: {service.data_dir}")
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("\n[serve] stopped")
    return 0


class BackgroundServer:
    """The service server on its own event-loop thread.

    >>> server = BackgroundServer(ExperimentService())
    >>> server.start()           # binds an ephemeral port
    >>> server.port              # doctest: +SKIP
    54321
    >>> server.stop()
    """

    def __init__(
        self,
        service: ExperimentService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()

    def start(self) -> "BackgroundServer":
        """Boot the event-loop thread; blocks until the port is bound."""
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):  # pragma: no cover - hang guard
            raise RuntimeError("service server failed to start")
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def boot() -> asyncio.AbstractServer:
            server = await serve(self.service.router, self.host, self.port)
            self.port = server.sockets[0].getsockname()[1]
            return server

        server = loop.run_until_complete(boot())
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            loop.close()

    def stop(self) -> None:
        """Stop the loop and join the thread (idempotent)."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
