"""Async HTTP experiment service over the campaign fabric.

Public surface:

- :class:`~repro.service.app.ExperimentService` — the campaign registry
  and its HTTP handlers (``POST /campaigns``, status, live telemetry
  events, deterministic export, cancel);
- :func:`~repro.service.server.run_service` /
  :class:`~repro.service.server.BackgroundServer` — foreground
  (``repro serve``) and in-process background serving;
- :class:`~repro.service.client.ServiceClient` — the blocking stdlib
  client ``repro submit`` and the tests drive the service with.

Everything is standard library only (asyncio + http.client); see
``docs/SERVICE.md`` for the endpoint contract, backend taxonomy, and
the determinism guarantees service campaigns inherit.
"""

from __future__ import annotations

from repro.service.app import CampaignRecord, ExperimentService, summary_records
from repro.service.client import ServiceClient, ServiceError
from repro.service.http import HttpError, Request, Response, Router
from repro.service.server import BackgroundServer, run_service

__all__ = [
    "CampaignRecord",
    "ExperimentService",
    "summary_records",
    "ServiceClient",
    "ServiceError",
    "HttpError",
    "Request",
    "Response",
    "Router",
    "BackgroundServer",
    "run_service",
]
