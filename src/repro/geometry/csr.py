"""Compressed-sparse-row adjacency: the scale representation of graphs.

Dense ``(n, n)`` boolean matrices are unbeatable at the paper's ~100-node
scale, but the ROADMAP's 10k-100k-node regimes (hierarchical routing over
dynamic networks, city-scale scenario mixes) make them the memory wall:
an ``(n, n)`` float64 distance matrix is ~800 MB at n=10k.  Local
topology-control schemes only ever consume *neighborhoods*, so the sparse
pipeline represents every adjacency as CSR — ``indptr``/``indices``
arrays plus optional per-edge ``data`` (edge lengths) — with memory
linear in the edge count.

:class:`CSRGraph` is deliberately minimal and immutable-by-convention:
rows are node ids, ``indices`` within a row are ascending, and every
operation that combines graphs (transpose, row-wise intersection, mutual
edges) is a vectorized pass over flat edge arrays.  BFS and connected
components run directly on the CSR arrays — no densification, ever.

Everything here is bit-identical to the dense constructions it replaces
(``tests/test_property_sparse.py`` enforces this with hypothesis suites);
the dense code paths survive as the equivalence oracle, the same
discipline as :mod:`repro.geometry._reference`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "CSRGraph",
    "csr_bfs",
    "csr_connected_components",
    "csr_is_connected",
    "csr_largest_component_fraction",
]


class CSRGraph:
    """Directed boolean adjacency in CSR form, optionally edge-weighted.

    Attributes
    ----------
    indptr:
        ``(n + 1,)`` int64 row pointers.
    indices:
        ``(nnz,)`` intp column ids; ascending within each row.
    data:
        Optional ``(nnz,)`` float64 per-edge values (edge lengths in this
        package), aligned with ``indices``; None for purely structural
        graphs.
    n:
        Number of nodes (rows == columns; all graphs here are square).
    """

    __slots__ = ("indptr", "indices", "data", "n")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray | None = None,
        n: int | None = None,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.intp)
        self.data = None if data is None else np.asarray(data, dtype=np.float64)
        self.n = int(self.indptr.shape[0] - 1) if n is None else int(n)
        if self.indptr.shape[0] != self.n + 1:
            raise ValueError(
                f"indptr has {self.indptr.shape[0]} entries, expected {self.n + 1}"
            )
        if self.data is not None and self.data.shape != self.indices.shape:
            raise ValueError("data must align with indices")

    # ------------------------------------------------------------------ #
    # constructors

    @classmethod
    def empty(cls, n: int) -> "CSRGraph":
        """Edgeless graph over *n* nodes."""
        return cls(
            np.zeros(n + 1, dtype=np.int64),
            np.empty(0, dtype=np.intp),
            np.empty(0, dtype=np.float64),
            n=n,
        )

    @classmethod
    def from_edges(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        n: int,
        data: np.ndarray | None = None,
        presorted: bool = False,
    ) -> "CSRGraph":
        """Build from COO edge arrays.

        Pass ``presorted=True`` only when the edges already arrive in
        row-major order with ascending columns per row (e.g. the output of
        ``np.nonzero`` on a dense matrix); otherwise a stable sort
        establishes it.
        """
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        if not presorted and rows.size:
            order = np.lexsort((cols, rows))
            rows, cols = rows[order], cols[order]
            if data is not None:
                data = np.asarray(data)[order]
        counts = np.bincount(rows, minlength=n) if rows.size else np.zeros(n, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, cols, data, n=n)

    @classmethod
    def from_dense(cls, adj: np.ndarray, dist: np.ndarray | None = None) -> "CSRGraph":
        """CSR form of a dense boolean adjacency (the oracle direction)."""
        adj = np.asarray(adj, dtype=bool)
        rows, cols = np.nonzero(adj)
        data = None if dist is None else np.asarray(dist, dtype=np.float64)[rows, cols]
        return cls.from_edges(rows, cols, adj.shape[0], data=data, presorted=True)

    # ------------------------------------------------------------------ #
    # basics

    @property
    def nnz(self) -> int:
        """Number of (directed) edges."""
        return int(self.indices.shape[0])

    def degrees(self) -> np.ndarray:
        """Out-degree per node (``(n,)`` int64)."""
        return np.diff(self.indptr)

    def row(self, u: int) -> np.ndarray:
        """Out-neighbors of *u*, ascending (a view)."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def row_data(self, u: int) -> np.ndarray:
        """Edge values of *u*'s out-edges (aligned with :meth:`row`)."""
        if self.data is None:
            raise ValueError("graph carries no edge data")
        return self.data[self.indptr[u] : self.indptr[u + 1]]

    def rows_array(self) -> np.ndarray:
        """Source node of every edge (``(nnz,)``, the COO row array)."""
        return np.repeat(np.arange(self.n, dtype=np.intp), self.degrees())

    def edge_keys(self) -> np.ndarray:
        """``row * n + col`` per edge — strictly ascending by construction."""
        return self.rows_array().astype(np.int64) * np.int64(self.n) + self.indices

    def to_dense(self) -> np.ndarray:
        """Dense boolean adjacency (small-n interop / oracle comparisons)."""
        out = np.zeros((self.n, self.n), dtype=bool)
        if self.nnz:
            out[self.rows_array(), self.indices] = True
        return out

    def to_scipy(self, weights: np.ndarray | None = None):
        """A ``scipy.sparse.csr_matrix`` sharing these arrays (no copy)."""
        from scipy.sparse import csr_matrix

        if weights is None:
            values = (
                np.ones(self.nnz, dtype=np.int8) if self.data is None else self.data
            )
        else:
            values = weights
        return csr_matrix((values, self.indices, self.indptr), shape=(self.n, self.n))

    def __repr__(self) -> str:
        return (
            f"CSRGraph(n={self.n}, nnz={self.nnz}, "
            f"weighted={self.data is not None})"
        )

    # ------------------------------------------------------------------ #
    # edge algebra (all vectorized over flat edge arrays)

    def select(self, keep: np.ndarray) -> "CSRGraph":
        """Subgraph keeping the edges where *keep* (an ``(nnz,)`` bool mask)
        is True; row-major order is preserved, so no re-sort is needed."""
        rows = self.rows_array()[keep]
        return CSRGraph.from_edges(
            rows,
            self.indices[keep],
            self.n,
            data=None if self.data is None else self.data[keep],
            presorted=True,
        )

    def filter_row_radius(self, radii: np.ndarray) -> "CSRGraph":
        """Edges with ``data <= radii[row]`` (per-source range filter)."""
        if self.data is None:
            raise ValueError("filter_row_radius needs edge data")
        radii = np.asarray(radii, dtype=np.float64)
        return self.select(self.data <= radii[self.rows_array()])

    def transpose(self) -> "CSRGraph":
        """Reverse every edge (data rides along)."""
        rows = self.rows_array()
        return CSRGraph.from_edges(self.indices, rows, self.n, data=self.data)

    def contains_edges(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Boolean mask: is each (row, col) pair an edge of this graph?

        Binary search over the globally ascending edge keys.
        """
        keys = self.edge_keys()
        probe = (
            np.asarray(rows, dtype=np.int64) * np.int64(self.n)
            + np.asarray(cols, dtype=np.int64)
        )
        if keys.size == 0:
            return np.zeros(probe.shape, dtype=bool)
        pos = np.searchsorted(keys, probe)
        pos_clipped = np.minimum(pos, keys.size - 1)
        return (pos < keys.size) & (keys[pos_clipped] == probe)

    def intersect(self, other: "CSRGraph") -> "CSRGraph":
        """Edges of *self* that are also edges of *other* (data kept)."""
        if other.n != self.n:
            raise ValueError("graphs must be over the same node set")
        return self.select(other.contains_edges(self.rows_array(), self.indices))

    def mutual(self) -> "CSRGraph":
        """Edges whose reverse is also present (``A & A.T``, data kept)."""
        return self.select(self.contains_edges(self.indices, self.rows_array()))

    def gather_rows(self, nodes: np.ndarray) -> np.ndarray:
        """Concatenated out-neighbors of *nodes* (duplicates preserved).

        The vectorized multi-slice gather: one ``repeat``/``cumsum`` index
        build instead of a Python loop over rows.
        """
        nodes = np.asarray(nodes, dtype=np.intp)
        starts = self.indptr[nodes]
        lens = self.indptr[nodes + 1] - starts
        total = int(lens.sum())
        if total == 0:
            return np.empty(0, dtype=np.intp)
        # flat[k] walks each row's slice: start_i + (k - offset_i)
        offsets = np.repeat(np.cumsum(lens) - lens, lens)
        flat = np.repeat(starts, lens) + (np.arange(total, dtype=np.int64) - offsets)
        return self.indices[flat]


# ---------------------------------------------------------------------- #
# graph algorithms on CSR


def csr_bfs(graph: CSRGraph, source: int) -> np.ndarray:
    """Reachable-set mask by BFS over a directed CSR adjacency.

    The sparse analogue of :func:`repro.sim.flood.directed_bfs`: each
    round gathers the out-neighborhoods of the frontier in one vectorized
    pass, so the total cost is O(edges touched), not O(rounds * n^2).
    Bit-identical reachability to the dense frontier expansion.
    """
    reached = np.zeros(graph.n, dtype=bool)
    reached[source] = True
    frontier = np.array([source], dtype=np.intp)
    while frontier.size:
        cand = graph.gather_rows(frontier)
        cand = cand[~reached[cand]]
        if cand.size == 0:
            break
        reached[cand] = True
        frontier = np.unique(cand)
    return reached


def csr_bfs_parents(graph: CSRGraph, source: int) -> np.ndarray:
    """BFS parent array (−1 = unreached, ``parent[source] = source``).

    Ties resolve to the lowest-id parent in the earliest round, matching
    a dense row-major BFS.
    """
    parent = np.full(graph.n, -1, dtype=np.intp)
    parent[source] = source
    frontier = np.array([source], dtype=np.intp)
    while frontier.size:
        cand = graph.gather_rows(frontier)
        owners = np.repeat(
            frontier, graph.indptr[frontier + 1] - graph.indptr[frontier]
        )
        fresh = parent[cand] < 0
        cand, owners = cand[fresh], owners[fresh]
        if cand.size == 0:
            break
        # first occurrence per candidate wins: frontier is ascending and
        # rows are gathered in frontier order, so the winner is the
        # lowest-id discoverer — the dense BFS tie-break.
        first = np.full(graph.n, -1, dtype=np.intp)
        first[cand[::-1]] = owners[::-1]
        newly = np.unique(cand)
        parent[newly] = first[newly]
        frontier = newly
    return parent


def csr_connected_components(graph: CSRGraph, directed: bool = False) -> np.ndarray:
    """Component label per node (scipy ``csgraph`` over the CSR arrays)."""
    from scipy.sparse.csgraph import connected_components as _cc

    if graph.n == 0:
        return np.zeros(0, dtype=np.intp)
    _, labels = _cc(graph.to_scipy(), directed=directed)
    return labels


def csr_is_connected(graph: CSRGraph) -> bool:
    """True iff the undirected view of *graph* is connected (n <= 1: True)."""
    if graph.n <= 1:
        return True
    return bool(csr_connected_components(graph).max() == 0)


def csr_largest_component_fraction(graph: CSRGraph) -> float:
    """Fraction of nodes in the largest (undirected) component."""
    if graph.n == 0:
        return 1.0
    labels = csr_connected_components(graph)
    return float(np.bincount(labels).max() / graph.n)
