"""Loop-based reference implementations of the proximity-graph kernels.

These are the original (pre-vectorization) per-pair constructions, kept
verbatim as the *semantic specification* of the fast kernels in
:mod:`repro.geometry.graphs`:

- the equivalence test suite asserts the vectorized kernels produce
  bit-identical adjacency matrices on randomized, collinear and
  duplicate-point layouts;
- ``benchmarks/bench_geometry.py`` times loop vs. vectorized to track the
  speedup in ``BENCH_geometry.json``.

They are deliberately slow (O(n^2) Python pair loops) — never call them
from simulator code.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.points import as_points, pairwise_distances

__all__ = [
    "unit_disk_graph_loop",
    "relative_neighborhood_graph_loop",
    "gabriel_graph_loop",
    "yao_graph_loop",
]


def unit_disk_graph_loop(points: np.ndarray, radius: float) -> np.ndarray:
    """Dense unit-disk construction: edge iff ``0 < d(u, v) <= radius``."""
    dist = pairwise_distances(points)
    adj = dist <= radius
    np.fill_diagonal(adj, False)
    return adj


def relative_neighborhood_graph_loop(
    points: np.ndarray, radius: float | None = None
) -> np.ndarray:
    """Per-pair RNG witness elimination (Toussaint 1980), original loop."""
    pts = as_points(points)
    n = pts.shape[0]
    dist = pairwise_distances(pts)
    adj = np.ones((n, n), dtype=bool) if radius is None else dist <= radius
    np.fill_diagonal(adj, False)
    out = adj.copy()
    for u in range(n):
        for v in range(u + 1, n):
            if not adj[u, v]:
                continue
            duv = dist[u, v]
            witnesses = np.flatnonzero(np.maximum(dist[u], dist[v]) < duv)
            if radius is not None:
                witnesses = witnesses[adj[u, witnesses] & adj[v, witnesses]]
            if witnesses.size:
                out[u, v] = out[v, u] = False
    return out


def gabriel_graph_loop(points: np.ndarray, radius: float | None = None) -> np.ndarray:
    """Per-pair Gabriel witness elimination, original loop."""
    pts = as_points(points)
    n = pts.shape[0]
    dist = pairwise_distances(pts)
    adj = np.ones((n, n), dtype=bool) if radius is None else dist <= radius
    np.fill_diagonal(adj, False)
    sq = dist * dist
    out = adj.copy()
    for u in range(n):
        for v in range(u + 1, n):
            if not adj[u, v]:
                continue
            witnesses = np.flatnonzero(sq[u] + sq[v] < sq[u, v])
            if radius is not None:
                witnesses = witnesses[adj[u, witnesses] & adj[v, witnesses]]
            if witnesses.size:
                out[u, v] = out[v, u] = False
    return out


def yao_graph_loop(
    points: np.ndarray, k: int = 6, radius: float | None = None
) -> np.ndarray:
    """Per-node Yao cone scan, original loop."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    pts = as_points(points)
    n = pts.shape[0]
    dist = pairwise_distances(pts)
    visible = np.ones((n, n), dtype=bool) if radius is None else dist <= radius
    np.fill_diagonal(visible, False)
    out = np.zeros((n, n), dtype=bool)
    sector = 2.0 * np.pi / k
    for u in range(n):
        nbrs = np.flatnonzero(visible[u])
        if nbrs.size == 0:
            continue
        vecs = pts[nbrs] - pts[u]
        angles = np.arctan2(vecs[:, 1], vecs[:, 0]) % (2.0 * np.pi)
        cones = np.minimum((angles / sector).astype(np.intp), k - 1)
        for c in range(k):
            in_cone = nbrs[cones == c]
            if in_cone.size:
                best = in_cone[np.argmin(dist[u, in_cone])]
                out[u, best] = out[best, u] = True
    return out
