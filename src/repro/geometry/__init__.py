"""Computational-geometry substrate: point kernels and proximity graphs."""

from repro.geometry.cones import cone_index, covers_with_alpha, max_angular_gap
from repro.geometry.csr import (
    CSRGraph,
    csr_bfs,
    csr_connected_components,
    csr_is_connected,
    csr_largest_component_fraction,
)
from repro.geometry.grid import DENSE_THRESHOLD, GraphBackend, GridIndex
from repro.geometry.sparse import IncrementalNeighborhoods, neighborhood_csr
from repro.geometry.graphs import (
    connected_components,
    delaunay_graph,
    edge_list,
    euclidean_mst,
    gabriel_graph,
    is_connected,
    largest_component_fraction,
    relative_neighborhood_graph,
    unit_disk_graph,
    yao_graph,
)
from repro.geometry.points import (
    angle_of,
    angular_difference,
    as_points,
    distance,
    distances_from,
    neighbors_within,
    pairwise_distances,
)

__all__ = [
    "as_points",
    "distance",
    "pairwise_distances",
    "distances_from",
    "neighbors_within",
    "angle_of",
    "angular_difference",
    "unit_disk_graph",
    "relative_neighborhood_graph",
    "gabriel_graph",
    "euclidean_mst",
    "yao_graph",
    "delaunay_graph",
    "edge_list",
    "is_connected",
    "connected_components",
    "largest_component_fraction",
    "max_angular_gap",
    "covers_with_alpha",
    "cone_index",
    "GridIndex",
    "GraphBackend",
    "DENSE_THRESHOLD",
    "CSRGraph",
    "csr_bfs",
    "csr_connected_components",
    "csr_is_connected",
    "csr_largest_component_fraction",
    "neighborhood_csr",
    "IncrementalNeighborhoods",
]
