"""Sparse neighborhood builders and dirty-region incremental rebuilds.

:func:`neighborhood_csr` is the one entry point for "give me the unit-disk
graph as CSR": it reuses the :class:`~repro.geometry.grid.GraphBackend`
dense/grid dispatch, so small point sets take the dense oracle path (one
``(n, n)`` distance matrix, ``np.nonzero``) while large deployments build
edges per 3x3 cell block and never allocate anything quadratic.  Both
paths produce bit-identical edge sets, columns ascending per row, with
edge lengths computed by the exact IEEE operation sequence of
:func:`repro.geometry.points.pairwise_distances`.

:class:`IncrementalNeighborhoods` adds the between-Hello-generations
optimization: under mobility, most nodes do not change hash cell between
consecutive topology-control rounds, so their adjacency rows — candidate
sets *and* distances — are provably unchanged and can be spliced from the
previous generation.  A node's row must be recomputed only if the node
moved or any cell of its 3x3 neighborhood gained or lost a moved node
("dirty" cells).  This is exact, not approximate: the result is always
bit-identical to a fresh build (property-tested in
``tests/test_property_sparse.py``), in the same oracle discipline as the
PR-2 decision cache's fingerprint reuse.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.csr import CSRGraph
from repro.geometry.grid import GraphBackend, GridIndex
from repro.geometry.points import as_points

__all__ = ["neighborhood_csr", "IncrementalNeighborhoods"]

#: Hash-cell coordinates must fit 32 bits for the packed int64 dirty-cell
#: keys; coordinates beyond this (absurd deployments or degenerate radii)
#: fall back to a full rebuild rather than risking key collisions.
_CELL_KEY_BOUND = 2**31

#: When more than this fraction of nodes is dirty, a fresh build is
#: cheaper than splice bookkeeping.
_DIRTY_REBUILD_FRACTION = 0.5


def neighborhood_csr(
    points: np.ndarray,
    radius: float,
    *,
    mode: str = "auto",
    backend: GraphBackend | None = None,
) -> CSRGraph:
    """Unit-disk adjacency (``0 < d <= radius``) as an edge-weighted CSR graph.

    Dispatch mirrors :func:`repro.geometry.graphs.unit_disk_graph`: pass a
    *backend* to reuse its cached state across queries, or *mode* to force
    ``"dense"`` / ``"grid"``.  The dense path is the oracle; the grid path
    is bit-identical to it (including boundary-inclusive radii).
    """
    pts = as_points(points)
    n = pts.shape[0]
    if backend is None:
        backend = GraphBackend(pts, mode=mode)
    if n == 0:
        return CSRGraph.empty(0)
    if radius > 0 and np.isfinite(radius) and backend.use_grid(radius):
        return backend._index_for(radius).neighbor_pairs(radius)
    d = backend.distances()
    mask = d <= radius
    np.fill_diagonal(mask, False)
    rows, cols = np.nonzero(mask)
    return CSRGraph.from_edges(rows, cols, n, data=d[rows, cols], presorted=True)


def _cell_keys(cells: np.ndarray) -> np.ndarray:
    """Pack ``(cx, cy)`` int64 cell coordinates into one int64 key each."""
    return (cells[:, 0] << np.int64(32)) + (cells[:, 1] & np.int64(0xFFFFFFFF))


class IncrementalNeighborhoods:
    """Stateful CSR builder that reuses clean rows across generations.

    Call :meth:`csr` once per topology-control generation with the full
    position array; the builder diffs against the previous generation and
    recomputes only the rows whose 3x3 cell neighborhood changed.  Static
    or paused nodes therefore cost nothing after the first build, which is
    what makes large-n simulation of mostly-quiescent networks tractable.

    Counters (``full_rebuilds``, ``incremental_updates``,
    ``reused_rows``, ``recomputed_rows``) expose the hit rate for
    benchmarks and telemetry.
    """

    __slots__ = (
        "full_rebuilds",
        "incremental_updates",
        "reused_rows",
        "recomputed_rows",
        "_points",
        "_radius",
        "_cells",
        "_csr",
    )

    def __init__(self) -> None:
        self.full_rebuilds = 0
        self.incremental_updates = 0
        self.reused_rows = 0
        self.recomputed_rows = 0
        self._points: np.ndarray | None = None
        self._radius: float | None = None
        self._cells: np.ndarray | None = None
        self._csr: CSRGraph | None = None

    def _full_build(
        self, pts: np.ndarray, radius: float, backend: GraphBackend | None
    ) -> CSRGraph:
        self.full_rebuilds += 1
        csr = neighborhood_csr(pts, radius, backend=backend)
        self._points = pts.copy()
        self._radius = float(radius)
        self._cells = (
            np.floor(pts / radius).astype(np.int64)
            if radius > 0 and np.isfinite(radius)
            else None
        )
        self._csr = csr
        return csr

    def csr(
        self,
        points: np.ndarray,
        radius: float,
        backend: GraphBackend | None = None,
    ) -> CSRGraph:
        """CSR unit-disk adjacency at *radius*, incrementally when possible.

        Always bit-identical to ``neighborhood_csr(points, radius)``; the
        incremental path only activates in the grid regime with stable
        *radius* and node count.
        """
        pts = as_points(points)
        n = pts.shape[0]
        if backend is None:
            backend = GraphBackend(pts)
        grid_regime = n > 0 and radius > 0 and np.isfinite(radius) and backend.use_grid(radius)
        if (
            not grid_regime
            or self._csr is None
            or self._cells is None
            or self._radius != radius
            or self._points is None
            or self._points.shape[0] != n
        ):
            return self._full_build(pts, radius, backend)

        prev_pts, prev_cells, prev = self._points, self._cells, self._csr
        moved = (pts != prev_pts).any(axis=1)
        if not moved.any():
            self.incremental_updates += 1
            self.reused_rows += n
            return prev

        cells = np.floor(pts / radius).astype(np.int64)
        if max(
            np.abs(cells).max(initial=0), np.abs(prev_cells).max(initial=0)
        ) >= _CELL_KEY_BOUND:
            return self._full_build(pts, radius, backend)

        # Dirty cells: every cell a moved node left or entered.  A row is
        # reusable iff its node is unmoved AND none of its 3x3 cells is
        # dirty — then its candidate set and every candidate's position
        # are unchanged, so the row's edges and distances are identical.
        dirty_keys = np.unique(
            np.concatenate(
                (_cell_keys(prev_cells[moved]), _cell_keys(cells[moved]))
            )
        )
        near_dirty = np.zeros(n, dtype=bool)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                shifted = ((cells[:, 0] + dx) << np.int64(32)) + (
                    (cells[:, 1] + dy) & np.int64(0xFFFFFFFF)
                )
                pos = np.searchsorted(dirty_keys, shifted)
                pos_c = np.minimum(pos, dirty_keys.size - 1)
                near_dirty |= (pos < dirty_keys.size) & (dirty_keys[pos_c] == shifted)
        dirty_nodes = moved | near_dirty
        n_dirty = int(dirty_nodes.sum())
        if n_dirty > n * _DIRTY_REBUILD_FRACTION:
            return self._full_build(pts, radius, backend)

        self.incremental_updates += 1
        self.recomputed_rows += n_dirty
        self.reused_rows += n - n_dirty
        fresh = backend._index_for(radius).neighbor_pairs(radius, only=dirty_nodes)
        old_rows = prev.rows_array()
        keep = ~dirty_nodes[old_rows]
        csr = CSRGraph.from_edges(
            np.concatenate((old_rows[keep], fresh.rows_array())),
            np.concatenate((prev.indices[keep], fresh.indices)),
            n,
            data=np.concatenate((prev.data[keep], fresh.data)),
        )
        self._points = pts.copy()
        self._cells = cells
        self._csr = csr
        return csr
