"""Vectorized planar-point kernels.

All heavy distance work in the simulator funnels through these functions so
the hot paths stay in NumPy (see the optimization guide: vectorize, use
views, avoid per-pair Python loops).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_points",
    "distance",
    "pairwise_distances",
    "distances_from",
    "neighbors_within",
    "angle_of",
    "angular_difference",
]


def as_points(points: np.ndarray | list | tuple) -> np.ndarray:
    """Coerce *points* to a ``(n, 2)`` float64 array (no copy when possible)."""
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim == 1 and arr.shape[0] == 2:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got shape {arr.shape}")
    return arr


def distance(p: np.ndarray, q: np.ndarray) -> float:
    """Euclidean distance between two 2-vectors."""
    dx = float(p[0]) - float(q[0])
    dy = float(p[1]) - float(q[1])
    return float(np.hypot(dx, dy))


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Dense ``(n, n)`` symmetric Euclidean distance matrix.

    For the network sizes studied in the paper (~100 nodes) a dense matrix
    is both faster and simpler than a spatial index.
    """
    pts = as_points(points)
    # Split-axis form: same IEEE sum x**2 + y**2 as the einsum over a
    # (n, n, 2) diff tensor (so results are bit-identical), but without
    # materializing the 3-D intermediate — ~5x faster at n=500.
    x, y = pts[:, 0], pts[:, 1]
    dx = x[:, np.newaxis] - x[np.newaxis, :]
    dy = y[:, np.newaxis] - y[np.newaxis, :]
    dx *= dx
    dy *= dy
    dx += dy
    return np.sqrt(dx, out=dx)


def distances_from(point: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Distances from one *point* to each row of *points* (shape ``(n,)``)."""
    pts = as_points(points)
    diff = pts - np.asarray(point, dtype=np.float64)[np.newaxis, :]
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def neighbors_within(
    point: np.ndarray, points: np.ndarray, radius: float, index=None
) -> np.ndarray:
    """Indices of rows of *points* at distance *at most* *radius* of *point*.

    Boundary-inclusive (``d <= radius``), matching the unit-disk
    convention: a node exactly at the transmission range is reachable.

    *index* may be a prebuilt spatial accelerator — a
    :class:`repro.geometry.grid.GridIndex` or
    :class:`repro.geometry.grid.GraphBackend` over the same *points* —
    in which case the query runs against it instead of the O(n) dense
    scan (same ascending indices either way).
    """
    if index is not None:
        return index.neighbors_within(point, radius)
    return np.flatnonzero(distances_from(point, points) <= radius)


def angle_of(origin: np.ndarray, target: np.ndarray) -> float:
    """Angle of the vector origin→target in radians, in ``[-pi, pi]``."""
    d = np.asarray(target, dtype=np.float64) - np.asarray(origin, dtype=np.float64)
    return float(np.arctan2(d[1], d[0]))


def angular_difference(a: float, b: float) -> float:
    """Smallest non-negative angle between two directions, in ``[0, pi]``."""
    diff = (a - b) % (2.0 * np.pi)
    return float(min(diff, 2.0 * np.pi - diff))
