"""Vectorized planar-point kernels.

All heavy distance work in the simulator funnels through these functions so
the hot paths stay in NumPy (see the optimization guide: vectorize, use
views, avoid per-pair Python loops).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_points",
    "distance",
    "pairwise_distances",
    "distances_from",
    "neighbors_within",
    "angle_of",
    "angular_difference",
]


def as_points(points: np.ndarray | list | tuple) -> np.ndarray:
    """Coerce *points* to a ``(n, 2)`` float64 array (no copy when possible)."""
    arr = np.asarray(points, dtype=np.float64)
    if arr.ndim == 1 and arr.shape[0] == 2:
        arr = arr[np.newaxis, :]
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got shape {arr.shape}")
    return arr


def distance(p: np.ndarray, q: np.ndarray) -> float:
    """Euclidean distance between two 2-vectors."""
    dx = float(p[0]) - float(q[0])
    dy = float(p[1]) - float(q[1])
    return float(np.hypot(dx, dy))


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Dense ``(n, n)`` symmetric Euclidean distance matrix.

    For the network sizes studied in the paper (~100 nodes) a dense matrix
    is both faster and simpler than a spatial index.
    """
    pts = as_points(points)
    diff = pts[:, np.newaxis, :] - pts[np.newaxis, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def distances_from(point: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Distances from one *point* to each row of *points* (shape ``(n,)``)."""
    pts = as_points(points)
    diff = pts - np.asarray(point, dtype=np.float64)[np.newaxis, :]
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def neighbors_within(point: np.ndarray, points: np.ndarray, radius: float) -> np.ndarray:
    """Indices of rows of *points* strictly within *radius* of *point*.

    The boundary (distance exactly equal to *radius*) is treated as
    reachable, matching the unit-disk convention ``d <= r``.
    """
    return np.flatnonzero(distances_from(point, points) <= radius)


def angle_of(origin: np.ndarray, target: np.ndarray) -> float:
    """Angle of the vector origin→target in radians, in ``[-pi, pi]``."""
    d = np.asarray(target, dtype=np.float64) - np.asarray(origin, dtype=np.float64)
    return float(np.arctan2(d[1], d[0]))


def angular_difference(a: float, b: float) -> float:
    """Smallest non-negative angle between two directions, in ``[0, pi]``."""
    diff = (a - b) % (2.0 * np.pi)
    return float(min(diff, 2.0 * np.pi - diff))
