"""Angular-coverage helpers for cone-based topology control (CBTC).

CBTC (Li, Halpern, Bahl, Wang, Wattenhofer 2001) grows a node's search
radius until the directions to its selected neighbors leave no angular gap
larger than ``alpha``.  These helpers answer the gap questions.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["max_angular_gap", "covers_with_alpha", "cone_index"]

_TWO_PI = 2.0 * math.pi


def max_angular_gap(angles: np.ndarray | list[float]) -> float:
    """Largest gap (radians) between consecutive directions on the circle.

    With no directions the gap is a full circle; with one it is also a full
    circle (the single direction cannot bound any cone).
    """
    arr = np.asarray(angles, dtype=np.float64) % _TWO_PI
    if arr.size == 0:
        return _TWO_PI
    arr = np.sort(arr)
    if arr.size == 1:
        return _TWO_PI
    gaps = np.diff(arr)
    wrap = _TWO_PI - (arr[-1] - arr[0])
    return float(max(gaps.max(), wrap))


def covers_with_alpha(angles: np.ndarray | list[float], alpha: float) -> bool:
    """True iff every angular gap between chosen directions is <= *alpha*.

    This is CBTC's termination test: the disk around the node is covered by
    cones of angle *alpha* anchored on neighbor directions.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    return max_angular_gap(angles) <= alpha + 1e-12


def cone_index(angle: float, k: int) -> int:
    """Index in ``[0, k)`` of the cone containing *angle* (Yao partitioning)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    idx = int((angle % _TWO_PI) / (_TWO_PI / k))
    return min(idx, k - 1)
