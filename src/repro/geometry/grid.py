"""Spatial cell-hash index and the dense/grid graph-backend seam.

For the paper's ~100-node scenarios a dense ``(n, n)`` distance matrix is
unbeatable, but the ROADMAP's production-scale regimes (n in the
thousands, as in hierarchical-routing studies over dynamic networks) need
sub-quadratic neighbor discovery.  :class:`GridIndex` hashes points into
square cells of side ``cell_size`` (chosen equal to the query radius, so
every neighbor of a point lies in its 3x3 cell neighborhood) and answers
range queries by scanning only nearby cells.

:class:`GraphBackend` is the dispatch seam: callers ask it for unit-disk
adjacency or radius queries and it picks the dense matrix or the grid
index by point count, so call sites never branch themselves.  Thresholds
and block sizes are documented in ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.points import as_points, distances_from, pairwise_distances

__all__ = ["GridIndex", "GraphBackend", "DENSE_THRESHOLD"]

#: Below this point count the dense distance matrix wins (cache-friendly
#: BLAS-style broadcasting beats per-cell gathering by a wide margin).
DENSE_THRESHOLD = 512

#: In auto mode the grid is used only when the point bounding box spans at
#: least this many cell areas (``bbox_area > factor * radius**2``): with
#: fewer cells the 3x3 candidate blocks cover most of the point set and
#: the dense matrix is faster despite being O(n^2).
GRID_AREA_FACTOR = 20.0


class GridIndex:
    """Uniform-cell spatial hash over a fixed set of 2-D points.

    Parameters
    ----------
    points:
        ``(n, 2)`` point set (coerced via :func:`as_points`).
    cell_size:
        Side of the square hash cells; must be positive.  For unit-disk
        queries at radius *r*, ``cell_size = r`` confines every candidate
        neighbor to the 3x3 cell block around a point's own cell.
    """

    __slots__ = ("points", "cell_size", "_cells", "_buckets")

    def __init__(self, points: np.ndarray, cell_size: float) -> None:
        if cell_size <= 0 or not np.isfinite(cell_size):
            raise ValueError(f"cell_size must be positive and finite, got {cell_size!r}")
        self.points = as_points(points)
        self.cell_size = float(cell_size)
        self._cells = np.floor(self.points / self.cell_size).astype(np.int64)
        self._buckets: dict[tuple[int, int], np.ndarray] = {}
        if self.points.shape[0] == 0:
            return
        order = np.lexsort((self._cells[:, 1], self._cells[:, 0]))
        sorted_cells = self._cells[order]
        boundary = np.flatnonzero(
            (sorted_cells[1:, 0] != sorted_cells[:-1, 0])
            | (sorted_cells[1:, 1] != sorted_cells[:-1, 1])
        )
        starts = np.concatenate(([0], boundary + 1))
        ends = np.concatenate((boundary + 1, [order.shape[0]]))
        for s, e in zip(starts, ends):
            key = (int(sorted_cells[s, 0]), int(sorted_cells[s, 1]))
            self._buckets[key] = np.sort(order[s:e])

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return self.points.shape[0]

    @property
    def n_occupied_cells(self) -> int:
        """Number of non-empty hash cells (diagnostics)."""
        return len(self._buckets)

    def candidates_near_cell(self, cx: int, cy: int, span: int = 1) -> np.ndarray:
        """Indices of points in the ``(2*span+1)^2`` cell block around (cx, cy)."""
        found = [
            self._buckets[key]
            for dx in range(-span, span + 1)
            for dy in range(-span, span + 1)
            if (key := (cx + dx, cy + dy)) in self._buckets
        ]
        if not found:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(found)

    def neighbors_within(self, point: np.ndarray, radius: float) -> np.ndarray:
        """Indices of indexed points with ``d(point, .) <= radius``, ascending.

        Matches the boundary-inclusive unit-disk convention of
        :func:`repro.geometry.points.neighbors_within` exactly.
        """
        if self.n_points == 0 or radius < 0:
            return np.empty(0, dtype=np.intp)
        p = np.asarray(point, dtype=np.float64).reshape(2)
        span = max(1, int(np.ceil(radius / self.cell_size)))
        cx, cy = (int(c) for c in np.floor(p / self.cell_size))
        cand = self.candidates_near_cell(cx, cy, span)
        if cand.size == 0:
            return cand
        d = distances_from(p, self.points[cand])
        hits = cand[d <= radius]
        return np.sort(hits)

    def unit_disk(self, radius: float) -> np.ndarray:
        """Boolean unit-disk adjacency (``0 < index distance``, ``d <= radius``).

        Bit-identical to the dense construction; only near cells are
        scanned, so work is O(n * average 3x3-block occupancy) instead of
        O(n^2).
        """
        n = self.n_points
        out = np.zeros((n, n), dtype=bool)
        if n == 0 or radius < 0:
            return out
        span = max(1, int(np.ceil(radius / self.cell_size)))
        for (cx, cy), members in self._buckets.items():
            cand = self.candidates_near_cell(cx, cy, span)
            diff = self.points[members][:, np.newaxis, :] - self.points[cand][np.newaxis, :, :]
            close = np.einsum("ijk,ijk->ij", diff, diff) <= radius * radius
            rows = np.repeat(members, cand.size)[close.ravel()]
            cols = np.tile(cand, members.size)[close.ravel()]
            out[rows, cols] = True
        np.fill_diagonal(out, False)
        return out

    def neighbor_pairs(self, radius: float, only: np.ndarray | None = None):
        """Unit-disk adjacency at *radius* as a :class:`CSRGraph` with edge
        lengths — the never-densified counterpart of :meth:`unit_disk`.

        Distances use the same split-axis ``sqrt(dx*dx + dy*dy)`` IEEE
        sequence and the same boundary-inclusive ``d <= radius`` predicate
        as :func:`repro.geometry.points.pairwise_distances`, so the result
        is bit-identical to ``CSRGraph.from_dense(dense_adj, dense_dist)``.

        *only* optionally restricts the *rows* (edge sources) to a boolean
        node mask — the primitive behind dirty-region incremental rebuilds,
        where unaffected rows are spliced from the previous generation.
        """
        from repro.geometry.csr import CSRGraph

        n = self.n_points
        if n == 0 or radius < 0:
            return CSRGraph.empty(n)
        span = max(1, int(np.ceil(radius / self.cell_size)))
        x, y = self.points[:, 0], self.points[:, 1]
        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        data_parts: list[np.ndarray] = []
        for (cx, cy), members in self._buckets.items():
            if only is not None:
                members = members[only[members]]
                if members.size == 0:
                    continue
            cand = np.sort(self.candidates_near_cell(cx, cy, span))
            dx = x[members][:, np.newaxis] - x[cand][np.newaxis, :]
            dy = y[members][:, np.newaxis] - y[cand][np.newaxis, :]
            dx *= dx
            dy *= dy
            dx += dy
            d = np.sqrt(dx, out=dx)
            close = (d <= radius) & (members[:, np.newaxis] != cand[np.newaxis, :])
            keep = close.ravel()
            rows_parts.append(np.repeat(members, cand.size)[keep])
            cols_parts.append(np.tile(cand, members.size)[keep])
            data_parts.append(d.ravel()[keep])
        if not rows_parts:
            return CSRGraph.empty(n)
        # cand is ascending within each bucket block, and every row lives in
        # exactly one bucket, so a stable sort by row yields ascending
        # columns per row.
        return CSRGraph.from_edges(
            np.concatenate(rows_parts),
            np.concatenate(cols_parts),
            n,
            data=np.concatenate(data_parts),
        )

    def cell_of(self, node: int) -> tuple[int, int]:
        """Hash-cell coordinates of an indexed point (diagnostics)."""
        return (int(self._cells[node, 0]), int(self._cells[node, 1]))


class GraphBackend:
    """Dense/grid dispatch facade for neighbor discovery on one point set.

    Build once per point set; every query then runs on whichever
    representation fits:

    - ``mode="dense"``, or auto with ``n < dense_threshold``, a
      precomputed ``dist``, or a bounding box spanning fewer than
      :data:`GRID_AREA_FACTOR` cell areas: one cached dense distance
      matrix serves all queries;
    - otherwise (``mode="grid"``, or auto at scale with a radius small
      relative to the deployment area): a :class:`GridIndex` with
      ``cell_size = radius`` answers each query sub-quadratically.

    Callers never branch on the representation — that is the seam that
    lets ``unit_disk_graph`` / ``neighbors_within`` scale without call-site
    changes.
    """

    __slots__ = ("points", "mode", "dense_threshold", "_dist", "_indices", "_bbox_area")

    def __init__(
        self,
        points: np.ndarray,
        *,
        mode: str = "auto",
        dense_threshold: int = DENSE_THRESHOLD,
        dist: np.ndarray | None = None,
    ) -> None:
        if mode not in ("auto", "dense", "grid"):
            raise ValueError(f"mode must be 'auto', 'dense' or 'grid', got {mode!r}")
        self.points = as_points(points)
        self.dense_threshold = int(dense_threshold)
        self.mode = mode
        self._dist = dist
        self._indices: dict[float, GridIndex] = {}
        self._bbox_area: float | None = None

    def _use_grid(self, radius: float) -> bool:
        """Pick the representation for one query (auto mode is per-radius)."""
        if self.mode != "auto":
            return self.mode == "grid"
        n = self.points.shape[0]
        if n < self.dense_threshold or self._dist is not None or radius <= 0:
            return False
        if not np.isfinite(radius):
            return False
        if self._bbox_area is None:
            span = self.points.max(axis=0) - self.points.min(axis=0)
            self._bbox_area = float(span[0] * span[1])
        return self._bbox_area > GRID_AREA_FACTOR * radius * radius

    def use_grid(self, radius: float) -> bool:
        """Public form of the per-query representation choice."""
        return self._use_grid(radius)

    @property
    def n_points(self) -> int:
        """Number of points served by this backend."""
        return self.points.shape[0]

    def distances(self) -> np.ndarray:
        """The dense distance matrix (computed lazily, cached)."""
        if self._dist is None:
            self._dist = pairwise_distances(self.points)
        return self._dist

    def _index_for(self, radius: float) -> GridIndex:
        index = self._indices.get(radius)
        if index is None:
            index = GridIndex(self.points, cell_size=radius)
            self._indices[radius] = index
        return index

    def unit_disk(self, radius: float) -> np.ndarray:
        """Unit-disk adjacency at *radius* via the selected representation."""
        if self.n_points == 0 or radius <= 0 or not self._use_grid(radius):
            adj = self.distances() <= radius
            np.fill_diagonal(adj, False)
            return adj
        return self._index_for(radius).unit_disk(radius)

    def neighbors_within(self, point: np.ndarray, radius: float) -> np.ndarray:
        """Indices of points with ``d(point, .) <= radius``, ascending."""
        if self.n_points == 0 or radius <= 0 or not self._use_grid(radius):
            return np.flatnonzero(distances_from(point, self.points) <= radius)
        return self._index_for(radius).neighbors_within(point, radius)

    def neighbor_csr(self, radius: float):
        """Unit-disk adjacency at *radius* as an edge-weighted CSR graph.

        The sparse counterpart of :meth:`unit_disk`: same dense/grid
        dispatch, but the grid path never materializes an ``(n, n)``
        matrix.  See :func:`repro.geometry.sparse.neighborhood_csr`.
        """
        from repro.geometry.sparse import neighborhood_csr

        return neighborhood_csr(self.points, radius, backend=self)
