"""Global geometric-graph constructions.

These are *reference* implementations computed from true global positions.
The localized protocols in :mod:`repro.protocols` must coincide with them on
static networks with consistent views (a key validation invariant), and the
metrics layer uses them to characterise snapshots.

Graphs over ``n`` points are represented as dense boolean adjacency
matrices — for the paper's network sizes (~100 nodes) this is the fastest
and simplest representation.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components as _cc
from scipy.sparse.csgraph import minimum_spanning_tree as _mst

from repro.geometry.points import as_points, pairwise_distances

__all__ = [
    "unit_disk_graph",
    "relative_neighborhood_graph",
    "gabriel_graph",
    "euclidean_mst",
    "yao_graph",
    "delaunay_graph",
    "is_connected",
    "connected_components",
    "largest_component_fraction",
    "edge_list",
]


def unit_disk_graph(points: np.ndarray, radius: float) -> np.ndarray:
    """Adjacency of the unit-disk graph: edge iff ``0 < d(u, v) <= radius``."""
    dist = pairwise_distances(points)
    adj = dist <= radius
    np.fill_diagonal(adj, False)
    return adj


def relative_neighborhood_graph(
    points: np.ndarray, radius: float | None = None
) -> np.ndarray:
    """Adjacency of the RNG restricted to a unit-disk graph.

    Edge (u, v) survives iff no witness w has
    ``max(d(u, w), d(w, v)) < d(u, v)`` (Toussaint 1980).  When *radius* is
    given, only unit-disk edges are considered and only unit-disk-visible
    witnesses count, which is exactly the localized setting of the paper.
    """
    pts = as_points(points)
    n = pts.shape[0]
    dist = pairwise_distances(pts)
    adj = np.ones((n, n), dtype=bool) if radius is None else dist <= radius
    np.fill_diagonal(adj, False)
    out = adj.copy()
    for u in range(n):
        for v in range(u + 1, n):
            if not adj[u, v]:
                continue
            duv = dist[u, v]
            witnesses = np.flatnonzero(
                np.maximum(dist[u], dist[v]) < duv
            )
            if radius is not None:
                witnesses = witnesses[adj[u, witnesses] & adj[v, witnesses]]
            if witnesses.size:
                out[u, v] = out[v, u] = False
    return out


def gabriel_graph(points: np.ndarray, radius: float | None = None) -> np.ndarray:
    """Adjacency of the Gabriel graph (witness restricted to the diametral disk).

    Edge (u, v) survives iff no w satisfies
    ``d(u, w)^2 + d(w, v)^2 < d(u, v)^2``.
    """
    pts = as_points(points)
    n = pts.shape[0]
    dist = pairwise_distances(pts)
    adj = np.ones((n, n), dtype=bool) if radius is None else dist <= radius
    np.fill_diagonal(adj, False)
    sq = dist * dist
    out = adj.copy()
    for u in range(n):
        for v in range(u + 1, n):
            if not adj[u, v]:
                continue
            witnesses = np.flatnonzero(sq[u] + sq[v] < sq[u, v])
            if radius is not None:
                witnesses = witnesses[adj[u, witnesses] & adj[v, witnesses]]
            if witnesses.size:
                out[u, v] = out[v, u] = False
    return out


def euclidean_mst(points: np.ndarray) -> np.ndarray:
    """Adjacency of the Euclidean minimum spanning tree of *points*."""
    pts = as_points(points)
    n = pts.shape[0]
    out = np.zeros((n, n), dtype=bool)
    if n <= 1:
        return out
    tree = _mst(csr_matrix(pairwise_distances(pts))).tocoo()
    out[tree.row, tree.col] = True
    return out | out.T


def yao_graph(points: np.ndarray, k: int = 6, radius: float | None = None) -> np.ndarray:
    """Adjacency of the (symmetrised) Yao graph with *k* cones.

    Each node keeps, in each of *k* equal cones around it, a directed edge
    to its nearest visible neighbor; the result here is the undirected
    union, which is how the paper's protocols use it (logical links are
    bidirectional).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    pts = as_points(points)
    n = pts.shape[0]
    dist = pairwise_distances(pts)
    visible = np.ones((n, n), dtype=bool) if radius is None else dist <= radius
    np.fill_diagonal(visible, False)
    out = np.zeros((n, n), dtype=bool)
    sector = 2.0 * np.pi / k
    for u in range(n):
        nbrs = np.flatnonzero(visible[u])
        if nbrs.size == 0:
            continue
        vecs = pts[nbrs] - pts[u]
        angles = np.arctan2(vecs[:, 1], vecs[:, 0]) % (2.0 * np.pi)
        cones = np.minimum((angles / sector).astype(np.intp), k - 1)
        for c in range(k):
            in_cone = nbrs[cones == c]
            if in_cone.size:
                best = in_cone[np.argmin(dist[u, in_cone])]
                out[u, best] = out[best, u] = True
    return out


def delaunay_graph(points: np.ndarray) -> np.ndarray:
    """Adjacency of the Delaunay triangulation of *points*.

    The classic proximity-graph hierarchy
    ``EMST ⊆ RNG ⊆ Gabriel ⊆ Delaunay`` makes this the outermost
    reference construction; degenerate inputs (< 3 points, collinear
    sets) fall back to the complete graph on the points, which preserves
    the hierarchy's containment property.
    """
    pts = as_points(points)
    n = pts.shape[0]
    out = np.zeros((n, n), dtype=bool)
    if n <= 1:
        return out
    if n == 2:
        out[0, 1] = out[1, 0] = True
        return out
    from scipy.spatial import Delaunay, QhullError

    try:
        tri = Delaunay(pts)
    except QhullError:
        out[:] = True
        np.fill_diagonal(out, False)
        return out
    for simplex in tri.simplices:
        for i in range(3):
            a, b = simplex[i], simplex[(i + 1) % 3]
            out[a, b] = out[b, a] = True
    return out


def edge_list(adj: np.ndarray) -> list[tuple[int, int]]:
    """Sorted list of undirected edges (u < v) of a boolean adjacency matrix."""
    iu, iv = np.nonzero(np.triu(adj, k=1))
    return list(zip(iu.tolist(), iv.tolist()))


def connected_components(adj: np.ndarray) -> np.ndarray:
    """Component label per node for an undirected boolean adjacency matrix."""
    n = adj.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.intp)
    _, labels = _cc(csr_matrix(adj), directed=False)
    return labels


def is_connected(adj: np.ndarray) -> bool:
    """True iff the undirected graph is connected (vacuously for n <= 1)."""
    if adj.shape[0] <= 1:
        return True
    labels = connected_components(adj)
    return bool(labels.max() == 0)


def largest_component_fraction(adj: np.ndarray) -> float:
    """Fraction of nodes in the largest connected component."""
    n = adj.shape[0]
    if n == 0:
        return 1.0
    labels = connected_components(adj)
    return float(np.bincount(labels).max() / n)
