"""Global geometric-graph constructions.

These are *reference* implementations computed from true global positions.
The localized protocols in :mod:`repro.protocols` must coincide with them on
static networks with consistent views (a key validation invariant), and the
metrics layer uses them to characterise snapshots.

Graphs over ``n`` points are represented as dense boolean adjacency
matrices.  The witness-elimination kernels (RNG, Gabriel) and the Yao cone
scan are fully vectorized: candidate edges are processed in memory-bounded
blocks of an ``(edges, witnesses)`` tensor instead of per-pair Python
loops, which is 1-2 orders of magnitude faster at the paper-and-beyond
scales (see ``docs/PERFORMANCE.md``; the original loop kernels survive in
:mod:`repro.geometry._reference` as the equivalence-test oracle).

Every construction accepts an optional precomputed ``dist`` matrix so
callers that already hold a snapshot's distances (e.g.
:class:`repro.sim.world.WorldSnapshot`) never pay for them twice.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components as _cc
from scipy.sparse.csgraph import minimum_spanning_tree as _mst

from repro.geometry.grid import DENSE_THRESHOLD, GraphBackend
from repro.geometry.points import as_points, pairwise_distances

__all__ = [
    "unit_disk_graph",
    "relative_neighborhood_graph",
    "gabriel_graph",
    "euclidean_mst",
    "yao_graph",
    "delaunay_graph",
    "is_connected",
    "connected_components",
    "largest_component_fraction",
    "edge_list",
]

#: Memory bound for one witness-tensor block: ~16 MB of float64 per
#: temporary, so n=1000 never allocates the full (edges, n) tensor at once
#: (that would be ~8 GB for a dense-radius layout).
_WITNESS_BLOCK_FLOATS = 2_000_000

#: Live-edge count below which witness elimination switches from the
#: witness-major shrinking pass to one blocked (edges, witnesses) tensor.
_SCALAR_SWITCH = 1024


def _witness_block(n: int) -> int:
    """Edges per witness-elimination block, keeping blocks ~16 MB."""
    return max(1, _WITNESS_BLOCK_FLOATS // max(n, 1))


def _witness_surviving(metric: np.ndarray, adj: np.ndarray, gabriel: bool) -> np.ndarray:
    """Candidate edges of *adj* that no witness eliminates, vectorized.

    *metric* is the pairwise distance matrix for the RNG rule
    (``max(m[u,w], m[w,v]) < m[u,v]``) or its elementwise square for the
    Gabriel rule (``m[u,w] + m[w,v] < m[u,v]``).  Witness visibility needs
    no explicit adjacency filter: both rules force ``m[u,w] < m[u,v]`` and
    ``m[w,v] < m[u,v]``, and every candidate edge already satisfies
    ``d(u, v) <= radius``, so a successful witness is automatically within
    radius of both endpoints (the loop oracle's ``adj[u, w] & adj[v, w]``
    filter is implied).

    Two phases keep both Python overhead and memory bounded:

    1. **witness-major** — one witness per iteration against the whole
       shrinking live-edge set (cheap 1-D gathers; most edges die to the
       first few witnesses, so the live set collapses quickly);
    2. **edge-major** — once few edges remain (or few witnesses were
       needed), the survivors are screened against all remaining witnesses
       in blocked 2-D broadcasts of at most ``_WITNESS_BLOCK_FLOATS``
       elements.
    """
    n = adj.shape[0]
    iu, iv = np.nonzero(np.triu(adj, k=1))
    target = metric[iu, iv]
    w = 0
    while w < n and iu.size > _SCALAR_SWITCH:
        row = metric[w]  # symmetric matrix: contiguous row view, cheap gathers
        a, b = row[iu], row[iv]
        keep = (a + b >= target) if gabriel else ((a >= target) | (b >= target))
        if not keep.all():
            iu, iv, target = iu[keep], iv[keep], target[keep]
        w += 1
    if w < n and iu.size:
        cols = metric[:, w:]  # contiguous witness slice: a view, no copy
        block = _witness_block(n - w)
        for s in range(0, iu.size, block):
            bu, bv, bt = iu[s : s + block], iv[s : s + block], target[s : s + block]
            a, b = cols[bu], cols[bv]
            if gabriel:
                dead = (a + b < bt[:, np.newaxis]).any(axis=1)
            else:
                bt = bt[:, np.newaxis]
                dead = ((a < bt) & (b < bt)).any(axis=1)
            iu[s : s + block][dead] = -1
        keep = iu >= 0
        iu, iv = iu[keep], iv[keep]
    out = np.zeros((n, n), dtype=bool)
    out[iu, iv] = True
    return out | out.T


def _dist_or_compute(pts: np.ndarray, dist: np.ndarray | None) -> np.ndarray:
    if dist is None:
        return pairwise_distances(pts)
    dist = np.asarray(dist, dtype=np.float64)
    n = pts.shape[0]
    if dist.shape != (n, n):
        raise ValueError(f"dist has shape {dist.shape}, expected {(n, n)}")
    return dist


def unit_disk_graph(
    points: np.ndarray,
    radius: float,
    dist: np.ndarray | None = None,
    backend: GraphBackend | None = None,
) -> np.ndarray:
    """Adjacency of the unit-disk graph: edge iff ``0 < d(u, v) <= radius``.

    Dispatches automatically: small point sets (or calls providing a
    precomputed *dist*) use the dense distance matrix; at
    ``n >= DENSE_THRESHOLD``, when the deployment area spans enough grid
    cells, a spatial grid index builds the adjacency from near cells
    only.  Pass *backend* to reuse one
    :class:`~repro.geometry.grid.GraphBackend` across several queries on
    the same point set.
    """
    if backend is None:
        pts = as_points(points)
        if dist is not None or pts.shape[0] < DENSE_THRESHOLD or radius <= 0:
            adj = _dist_or_compute(pts, dist) <= radius
            np.fill_diagonal(adj, False)
            return adj
        backend = GraphBackend(pts)
    return backend.unit_disk(radius)


def relative_neighborhood_graph(
    points: np.ndarray,
    radius: float | None = None,
    dist: np.ndarray | None = None,
) -> np.ndarray:
    """Adjacency of the RNG restricted to a unit-disk graph.

    Edge (u, v) survives iff no witness w has
    ``max(d(u, w), d(w, v)) < d(u, v)`` (Toussaint 1980).  When *radius* is
    given, only unit-disk edges are considered and only unit-disk-visible
    witnesses count, which is exactly the localized setting of the paper.

    Vectorized witness elimination — see :func:`_witness_surviving`; the
    per-pair loop oracle survives in :mod:`repro.geometry._reference`.
    """
    pts = as_points(points)
    n = pts.shape[0]
    dist = _dist_or_compute(pts, dist)
    adj = np.ones((n, n), dtype=bool) if radius is None else dist <= radius
    np.fill_diagonal(adj, False)
    return _witness_surviving(dist, adj, gabriel=False)


def gabriel_graph(
    points: np.ndarray,
    radius: float | None = None,
    dist: np.ndarray | None = None,
) -> np.ndarray:
    """Adjacency of the Gabriel graph (witness restricted to the diametral disk).

    Edge (u, v) survives iff no w satisfies
    ``d(u, w)^2 + d(w, v)^2 < d(u, v)^2``.  Same vectorized witness
    elimination as :func:`relative_neighborhood_graph`, on squared
    distances.
    """
    pts = as_points(points)
    n = pts.shape[0]
    dist = _dist_or_compute(pts, dist)
    adj = np.ones((n, n), dtype=bool) if radius is None else dist <= radius
    np.fill_diagonal(adj, False)
    return _witness_surviving(dist * dist, adj, gabriel=True)


def euclidean_mst(points: np.ndarray, dist: np.ndarray | None = None) -> np.ndarray:
    """Adjacency of the Euclidean minimum spanning tree of *points*."""
    pts = as_points(points)
    n = pts.shape[0]
    out = np.zeros((n, n), dtype=bool)
    if n <= 1:
        return out
    tree = _mst(csr_matrix(_dist_or_compute(pts, dist))).tocoo()
    out[tree.row, tree.col] = True
    return out | out.T


def yao_graph(
    points: np.ndarray,
    k: int = 6,
    radius: float | None = None,
    dist: np.ndarray | None = None,
) -> np.ndarray:
    """Adjacency of the (symmetrised) Yao graph with *k* cones.

    Each node keeps, in each of *k* equal cones around it, a directed edge
    to its nearest visible neighbor; the result here is the undirected
    union, which is how the paper's protocols use it (logical links are
    bidirectional).

    Vectorized cone scan, two regimes picked by edge density:

    - sparse (restricted radius): visible directed pairs are bucketed
      into ``(node, cone)`` groups; one stable distance sort plus a
      reverse scatter picks each group's nearest neighbor (ties broken
      by the smaller index, exactly as the loop oracle's ``argmin``);
    - dense (most pairs visible): the sort over ~n^2 pairs would
      dominate, so instead each cone gets one masked ``argmin`` row scan
      of the full matrix (argmin's first-minimum rule is the same
      tie-break).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    pts = as_points(points)
    n = pts.shape[0]
    dist = _dist_or_compute(pts, dist)
    visible = np.ones((n, n), dtype=bool) if radius is None else dist <= radius
    np.fill_diagonal(visible, False)
    out = np.zeros((n, n), dtype=bool)
    su, sv = np.nonzero(visible)
    if su.size == 0:
        return out
    sector = 2.0 * np.pi / k
    if su.size * 4 >= n * n:
        dx = pts[:, 0][np.newaxis, :] - pts[:, 0][:, np.newaxis]
        dy = pts[:, 1][np.newaxis, :] - pts[:, 1][:, np.newaxis]
        angles = np.arctan2(dy, dx) % (2.0 * np.pi)
        cones = np.minimum((angles / sector).astype(np.intp), k - 1)
        masked = np.empty((n, n))
        rows = np.arange(n)
        for c in range(k):
            np.copyto(masked, dist)
            masked[~(visible & (cones == c))] = np.inf
            w = np.argmin(masked, axis=1)
            hit = masked[rows, w] < np.inf
            out[rows[hit], w[hit]] = True
            out[w[hit], rows[hit]] = True
        return out
    vecs = pts[sv] - pts[su]
    angles = np.arctan2(vecs[:, 1], vecs[:, 0]) % (2.0 * np.pi)
    cones = np.minimum((angles / sector).astype(np.intp), k - 1)
    group = su * np.intp(k) + cones
    # Stable sort by distance keeps equal-distance pairs in (u, v-ascending)
    # enumeration order; scattering winners in *reverse* sorted order leaves
    # each group holding its first (nearest, smallest-v) pair.
    order = np.argsort(dist[su, sv], kind="stable")[::-1]
    winner = np.full(n * k, -1, dtype=np.intp)
    winner[group[order]] = order
    winners = winner[winner >= 0]
    bu, bv = su[winners], sv[winners]
    out[bu, bv] = out[bv, bu] = True
    return out


def delaunay_graph(points: np.ndarray) -> np.ndarray:
    """Adjacency of the Delaunay triangulation of *points*.

    The classic proximity-graph hierarchy
    ``EMST ⊆ RNG ⊆ Gabriel ⊆ Delaunay`` makes this the outermost
    reference construction; degenerate inputs (< 3 points, collinear
    sets) fall back to the complete graph on the points, which preserves
    the hierarchy's containment property.  Co-circular quadruples are the
    remaining degeneracy: their triangulation is not unique and qhull
    picks one diagonal arbitrarily, so the containment only holds for
    points in general position.
    """
    pts = as_points(points)
    n = pts.shape[0]
    out = np.zeros((n, n), dtype=bool)
    if n <= 1:
        return out
    if n == 2:
        out[0, 1] = out[1, 0] = True
        return out
    from scipy.spatial import Delaunay, QhullError

    try:
        tri = Delaunay(pts)
    except QhullError:
        out[:] = True
        np.fill_diagonal(out, False)
        return out
    for simplex in tri.simplices:
        for i in range(3):
            a, b = simplex[i], simplex[(i + 1) % 3]
            out[a, b] = out[b, a] = True
    return out


def edge_list(adj: np.ndarray) -> list[tuple[int, int]]:
    """Sorted list of undirected edges (u < v) of a boolean adjacency matrix."""
    iu, iv = np.nonzero(np.triu(adj, k=1))
    return list(zip(iu.tolist(), iv.tolist()))


def connected_components(adj: np.ndarray) -> np.ndarray:
    """Component label per node for an undirected boolean adjacency matrix."""
    n = adj.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.intp)
    _, labels = _cc(csr_matrix(adj), directed=False)
    return labels


def is_connected(adj: np.ndarray) -> bool:
    """True iff the undirected graph is connected (vacuously for n <= 1)."""
    if adj.shape[0] <= 1:
        return True
    labels = connected_components(adj)
    return bool(labels.max() == 0)


def largest_component_fraction(adj: np.ndarray) -> float:
    """Fraction of nodes in the largest connected component."""
    n = adj.shape[0]
    if n == 0:
        return 1.0
    labels = connected_components(adj)
    return float(np.bincount(labels).max() / n)
