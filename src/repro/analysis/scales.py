"""Experiment scales: the paper's full setup and scaled-down presets.

The paper runs 100 nodes for 100 s, 10 samples/s, 20 repetitions per data
point.  That is minutes of wall-clock per *point* in pure Python, so the
benchmark suite uses scaled presets that keep the *shape* of every curve
(who wins, where the crossovers fall) while fitting in CI; the CLI exposes
the full scale for faithful runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mobility.base import Area
from repro.sim.config import ScenarioConfig
from repro.util.validate import check_int_range

__all__ = ["Scale", "PAPER", "STANDARD", "QUICK", "SMOKE"]


@dataclass(frozen=True)
class Scale:
    """Sizing of one experiment campaign.

    Attributes
    ----------
    name:
        Preset label.
    n_nodes, duration, sample_rate, warmup:
        Scenario sizing (see :class:`~repro.sim.config.ScenarioConfig`).
    repetitions:
        Independent seeds per data point.
    speeds:
        Mean random-waypoint speeds (m/s) swept by the figures.
    buffer_widths:
        Buffer-zone widths (m) swept by Figs. 7-10.
    """

    name: str
    n_nodes: int = 100
    area_side: float = 900.0
    duration: float = 100.0
    sample_rate: float = 10.0
    warmup: float = 2.0
    repetitions: int = 20
    speeds: tuple[float, ...] = (1.0, 20.0, 40.0, 80.0, 160.0)
    buffer_widths: tuple[float, ...] = (0.0, 1.0, 10.0, 100.0)

    def __post_init__(self) -> None:
        check_int_range("repetitions", self.repetitions, 1)
        if not self.speeds:
            raise ValueError("at least one speed is required")

    def config(self, **overrides) -> ScenarioConfig:
        """Scenario config at this scale (extra overrides win).

        Reduced presets shrink the area along with the node count so the
        mean degree stays near the paper's ~18 — sparser networks would
        change *every* curve's ceiling, not just its noise.
        """
        base = dict(
            n_nodes=self.n_nodes,
            area=Area(self.area_side, self.area_side),
            duration=self.duration,
            sample_rate=self.sample_rate,
            warmup=self.warmup,
        )
        base.update(overrides)
        return ScenarioConfig(**base)


#: The paper's exact evaluation scale (Section 5.1).
PAPER = Scale(name="paper")

#: Full curve shapes at a fraction of the cost — good for overnight runs.
STANDARD = Scale(
    name="standard",
    n_nodes=100,
    duration=30.0,
    sample_rate=5.0,
    repetitions=5,
)

#: Benchmark-suite default: minutes for the whole figure set.
QUICK = Scale(
    name="quick",
    n_nodes=50,
    area_side=636.0,  # 8100 m^2 per node, the paper's density
    duration=10.0,
    sample_rate=2.0,
    warmup=2.0,
    repetitions=3,
    speeds=(1.0, 20.0, 40.0, 160.0),
    buffer_widths=(0.0, 10.0, 30.0, 100.0),
)

#: Smoke-test scale: seconds end-to-end, shape only loosely preserved.
SMOKE = Scale(
    name="smoke",
    n_nodes=30,
    area_side=493.0,  # 8100 m^2 per node, the paper's density
    duration=6.0,
    sample_rate=1.0,
    warmup=2.0,
    repetitions=2,
    speeds=(1.0, 40.0),
    buffer_widths=(0.0, 100.0),
)
