"""Paired comparison of two configurations (common random numbers).

"Is view synchronization better than baseline *here*?" is a paired
question: run both configurations on the *same* seeds (identical
placements, trajectories, Hello jitter) and examine the per-seed
differences.  Pairing removes the between-world variance that dominates
small MANET studies, so far fewer repetitions resolve a real effect —
standard simulation methodology the harness makes one call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.experiment import ExperimentSpec, run_once
from repro.metrics.stats import Estimate, mean_ci
from repro.util.errors import ConfigurationError
from repro.util.validate import check_int_range

__all__ = ["PairedComparison", "compare_specs"]

#: RunResult properties exposed as comparison metrics.
_METRICS = {
    "connectivity": "connectivity_ratio",
    "tx_range": "mean_transmission_range",
    "logical_degree": "mean_logical_degree",
    "physical_degree": "mean_physical_degree",
}


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired A/B comparison.

    Attributes
    ----------
    metric:
        Compared metric name.
    difference:
        Mean and CI of (B - A) over the paired seeds.
    verdict:
        ``"B"`` if B is significantly higher, ``"A"`` if significantly
        lower, ``None`` if the CI straddles zero.
    a_mean / b_mean:
        The two configurations' mean values, for context.
    """

    metric: str
    difference: Estimate
    verdict: str | None
    a_mean: float
    b_mean: float

    def summary(self) -> str:
        """One-line human-readable result."""
        if self.verdict is None:
            sig = "no significant difference"
        else:
            sig = f"{self.verdict} significantly higher"
        return (
            f"{self.metric}: A={self.a_mean:.3f}, B={self.b_mean:.3f}, "
            f"B-A={self.difference} -> {sig}"
        )


def compare_specs(
    spec_a: ExperimentSpec,
    spec_b: ExperimentSpec,
    repetitions: int = 5,
    base_seed: int = 9000,
    metric: str = "connectivity",
) -> PairedComparison:
    """Run both specs on the same seeds and compare pairwise.

    Parameters
    ----------
    metric:
        One of ``connectivity``, ``tx_range``, ``logical_degree``,
        ``physical_degree``.
    """
    check_int_range("repetitions", repetitions, 2)
    if metric not in _METRICS:
        raise ConfigurationError(
            f"unknown metric {metric!r}; choose from {sorted(_METRICS)}"
        )
    attr = _METRICS[metric]
    a_vals, b_vals = [], []
    for i in range(repetitions):
        seed = base_seed + i
        a_vals.append(getattr(run_once(spec_a, seed=seed), attr))
        b_vals.append(getattr(run_once(spec_b, seed=seed), attr))
    diffs = [b - a for a, b in zip(a_vals, b_vals)]
    estimate = mean_ci(diffs)
    if estimate.low > 0:
        verdict: str | None = "B"
    elif estimate.high < 0:
        verdict = "A"
    else:
        verdict = None
    return PairedComparison(
        metric=metric,
        difference=estimate,
        verdict=verdict,
        a_mean=float(sum(a_vals) / len(a_vals)),
        b_mean=float(sum(b_vals) / len(b_vals)),
    )
