"""Terminal plotting: render figure curves as ASCII charts.

The harness's primary outputs are tables (diff-friendly, CI-friendly), but
a curve's *shape* — who wins, where the crossover sits — reads faster as a
picture.  These charts are pure text, so they work in logs and over ssh,
and they carry the same data as :meth:`FigureResult.rows`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["ascii_chart", "figure_chart", "topology_map"]

_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    y_range: tuple[float, float] | None = None,
    title: str | None = None,
) -> str:
    """Plot named (xs, ys) curves on one text canvas.

    Parameters
    ----------
    series:
        Mapping label -> (x values, y values); each curve gets a marker.
    width, height:
        Canvas size in characters (excluding axes).
    y_range:
        Fixed y axis range; default spans the data (padded 5 %).
    """
    if not series:
        return "(no data)"
    all_x = np.concatenate([np.asarray(xs, dtype=float) for xs, _ in series.values()])
    all_y = np.concatenate([np.asarray(ys, dtype=float) for _, ys in series.values()])
    if all_x.size == 0:
        return "(no data)"
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    if y_range is None:
        pad = 0.05 * (float(all_y.max()) - float(all_y.min()) or 1.0)
        y_lo, y_hi = float(all_y.min()) - pad, float(all_y.max()) + pad
    else:
        y_lo, y_hi = y_range
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    canvas = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, max(0, int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))))

    def to_row(y: float) -> int:
        frac = (y - y_lo) / (y_hi - y_lo)
        return min(height - 1, max(0, int(round((1.0 - frac) * (height - 1)))))

    legend = []
    for idx, (label, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        legend.append(f"{marker} {label}")
        xs_arr = np.asarray(xs, dtype=float)
        ys_arr = np.asarray(ys, dtype=float)
        # linear interpolation between points for a continuous stroke
        for i in range(len(xs_arr) - 1):
            c0, c1 = to_col(xs_arr[i]), to_col(xs_arr[i + 1])
            for c in range(min(c0, c1), max(c0, c1) + 1):
                if c1 == c0:
                    y = ys_arr[i]
                else:
                    frac = (c - c0) / (c1 - c0)
                    y = ys_arr[i] + frac * (ys_arr[i + 1] - ys_arr[i])
                canvas[to_row(float(y))][c] = marker
        for x, y in zip(xs_arr, ys_arr):
            canvas[to_row(float(y))][to_col(float(x))] = marker

    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(canvas):
        if r == 0:
            axis = f"{y_hi:8.2f} |"
        elif r == height - 1:
            axis = f"{y_lo:8.2f} |"
        elif r == height // 2:
            axis = f"{(y_lo + y_hi) / 2:8.2f} |"
        else:
            axis = "         |"
        lines.append(axis + "".join(row))
    lines.append("         +" + "-" * width)
    left = f"{x_lo:g}"
    right = f"{x_hi:g}"
    gap = max(1, width - len(left) - len(right))
    lines.append("          " + left + " " * gap + right)
    lines.append(f"          {x_label} →   ({y_label} ↑)")
    lines.append("          " + "   ".join(legend))
    return "\n".join(lines)


def topology_map(snapshot, width: int = 60, height: int = 24) -> str:
    """Render a :class:`~repro.sim.world.WorldSnapshot` as an ASCII map.

    Nodes are digits (ID mod 10); logical links are drawn with ``.``
    between endpoints.  Handy in examples and debugging sessions to *see*
    a partition.
    """
    positions = snapshot.positions
    n = positions.shape[0]
    if n == 0:
        return "(empty network)"
    x_lo, y_lo = positions.min(axis=0)
    x_hi, y_hi = positions.max(axis=0)
    x_span = max(x_hi - x_lo, 1e-9)
    y_span = max(y_hi - y_lo, 1e-9)
    canvas = [[" "] * width for _ in range(height)]

    def cell(p) -> tuple[int, int]:
        col = int(round((p[0] - x_lo) / x_span * (width - 1)))
        row = int(round((1.0 - (p[1] - y_lo) / y_span) * (height - 1)))
        return row, col

    links = snapshot.logical | snapshot.logical.T
    iu, iv = np.nonzero(np.triu(links, k=1))
    for u, v in zip(iu, iv):
        r0, c0 = cell(positions[u])
        r1, c1 = cell(positions[v])
        steps = max(abs(r1 - r0), abs(c1 - c0), 1)
        for s in range(1, steps):
            r = r0 + (r1 - r0) * s // steps
            c = c0 + (c1 - c0) * s // steps
            if canvas[r][c] == " ":
                canvas[r][c] = "."
    for i in range(n):
        r, c = cell(positions[i])
        canvas[r][c] = str(i % 10)
    lines = [f"t = {snapshot.time:.2f}s — {n} nodes, logical links as dots"]
    lines.extend("".join(row) for row in canvas)
    return "\n".join(lines)


def figure_chart(figure, width: int = 64, height: int = 16) -> str:
    """Render a :class:`~repro.analysis.figures.FigureResult` as ASCII.

    Connectivity figures get a fixed [0, 1] y-range so different charts
    compare visually.
    """
    series = {
        s.label: (s.xs(), s.y(figure.metric)) for s in figure.series
    }
    y_range = (0.0, 1.0) if figure.metric == "connectivity" else None
    x_name = figure.series[0].x_name if figure.series else "x"
    return ascii_chart(
        series,
        width=width,
        height=height,
        x_label=x_name,
        y_label=figure.metric,
        y_range=y_range,
        title=f"{figure.figure_id} — {figure.title}",
    )
