"""Unicast routing over maintained topologies: the payoff experiment.

Mobility-tolerant management exists so that "a normal routing protocol can
be used and a short delay can be expected" (Section 2.2).  This study runs
that normal protocol — geographic GFG/GPSR — over the effective topology
each mechanism maintains, and reports what an application actually sees:

- unicast delivery ratio,
- hop-count stretch versus the shortest path in the snapshot's *original*
  (normal-range) topology,
- how often perimeter recovery had to engage (a void/quality indicator).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

from repro.analysis.experiment import ExperimentSpec, build_world
from repro.routing.geographic import GeographicRouter
from repro.util.randomness import SeedSequenceFactory
from repro.util.validate import check_int_range

__all__ = ["UnicastStudyResult", "run_unicast_study"]


@dataclass(frozen=True)
class UnicastStudyResult:
    """Aggregated unicast routing outcomes for one configuration.

    Attributes
    ----------
    spec:
        The configuration routed over.
    attempts:
        Number of (snapshot, source, destination) routing attempts.
    delivery_ratio:
        Delivered / attempted.
    mean_hop_stretch:
        Mean (GPSR hops) / (original-topology shortest hops) over delivered
        packets whose endpoints were connected in the original topology.
    perimeter_fraction:
        Fraction of delivered packets that needed perimeter recovery.
    """

    spec: ExperimentSpec
    attempts: int
    delivery_ratio: float
    mean_hop_stretch: float
    perimeter_fraction: float

    def row(self) -> dict:
        """Flat dict row for tables."""
        return {
            "configuration": self.spec.describe(),
            "attempts": self.attempts,
            "delivery": self.delivery_ratio,
            "hop_stretch": self.mean_hop_stretch,
            "perimeter_frac": self.perimeter_fraction,
        }


def _hop_counts(adjacency: np.ndarray) -> np.ndarray:
    """All-pairs hop counts of an undirected boolean adjacency."""
    return shortest_path(
        csr_matrix(adjacency.astype(np.int8)), method="D", directed=False,
        unweighted=True,
    )


def run_unicast_study(
    spec: ExperimentSpec,
    seed: int = 0,
    n_snapshots: int = 4,
    pairs_per_snapshot: int = 10,
) -> UnicastStudyResult:
    """Route random unicast pairs over snapshots of one simulated run."""
    check_int_range("n_snapshots", n_snapshots, 1)
    check_int_range("pairs_per_snapshot", pairs_per_snapshot, 1)
    world = build_world(spec, seed)
    cfg = spec.config
    rng = SeedSequenceFactory(seed).rng("unicast-pairs")
    times = np.linspace(cfg.warmup + 1.0, cfg.duration, n_snapshots)
    attempts = delivered = perimeter_used = 0
    stretches: list[float] = []
    for t in times:
        world.run_until(float(t))
        snap = world.snapshot()
        effective = snap.effective_bidirectional(
            world.manager.physical_neighbor_mode
        )
        router = GeographicRouter(effective, snap.positions)
        original_hops = _hop_counts(snap.original_topology())
        for _ in range(pairs_per_snapshot):
            s, d = rng.choice(cfg.n_nodes, size=2, replace=False)
            attempts += 1
            result = router.route(int(s), int(d))
            if not result.delivered:
                continue
            delivered += 1
            if result.perimeter_hops > 0:
                perimeter_used += 1
            base = original_hops[s, d]
            if np.isfinite(base) and base >= 1:
                stretches.append(result.hops / base)
    return UnicastStudyResult(
        spec=spec,
        attempts=attempts,
        delivery_ratio=delivered / attempts if attempts else 0.0,
        mean_hop_stretch=float(np.mean(stretches)) if stretches else float("nan"),
        perimeter_fraction=perimeter_used / delivered if delivered else 0.0,
    )
