"""Experiment runner: specs, single runs, repetition aggregates.

An :class:`ExperimentSpec` is a declarative description of one simulated
configuration (protocol, consistency mechanism, buffer width, PN mode,
mobility level, scenario).  :func:`run_once` executes it with one seed and
returns per-sample series; :func:`run_repetitions` averages independent
repetitions into :class:`~repro.metrics.stats.Estimate` values with 95 %
confidence intervals — the paper's reporting protocol (20 repetitions,
10 samples/s, 95 % CIs).

Repetitions are embarrassingly parallel (independent seeds, independent
worlds); pass ``workers > 1`` to fan them out over processes.  Specs are
plain picklable dataclasses, and each worker runs one complete simulation,
so the parallel efficiency is essentially linear until the machine runs
out of cores.
"""

from __future__ import annotations

import json
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.buffer_zone import BufferZonePolicy
from repro.core.consistency import make_mechanism
from repro.core.manager import MobilitySensitiveTopologyControl
from repro.faults.schedule import FaultSchedule
from repro.metrics.connectivity import strictly_connected
from repro.metrics.stats import Estimate, mean_ci
from repro.metrics.topology import sample_topology
from repro.mobility.base import Area, MobilityModel
from repro.mobility.static import StaticPlacement
from repro.mobility.waypoint import RandomWaypoint
from repro.orchestrator.context import current_orchestrator
from repro.protocols.base import make_protocol
from repro.sim.config import ScenarioConfig
from repro.sim.flood import flood
from repro.sim.world import NetworkWorld
from repro.telemetry.core import Telemetry, TelemetrySummary
from repro.telemetry.runtime import current_telemetry
from repro.util.errors import WorkUnitError
from repro.util.randomness import SeedSequenceFactory
from repro.util.validate import check_int_range, check_non_negative

__all__ = [
    "ExperimentSpec",
    "RunStats",
    "RunResult",
    "AggregateResult",
    "run_once",
    "run_repetitions",
    "run_repetitions_many",
    "aggregate_runs",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """One simulated configuration.

    Attributes
    ----------
    protocol:
        Registered protocol name (``rng``, ``mst``, ``spt2``, ...).
    protocol_kwargs:
        Keyword arguments for the protocol constructor.
    mechanism:
        Consistency mechanism name (``baseline``, ``view-sync``,
        ``proactive``, ``reactive``, ``weak``).
    mechanism_kwargs:
        Keyword arguments for the mechanism constructor.
    buffer_width:
        Buffer-zone width in metres (0 = no buffer).
    physical_neighbor_mode:
        Accept data packets from any in-range sender.
    mean_speed:
        Random-waypoint mean speed, m/s; 0 selects a static network.
    config:
        Scenario parameters.
    label:
        Optional display label (defaults to a generated one).
    """

    protocol: str = "rng"
    protocol_kwargs: dict = field(default_factory=dict)
    mechanism: str = "baseline"
    mechanism_kwargs: dict = field(default_factory=dict)
    buffer_width: float = 0.0
    physical_neighbor_mode: bool = False
    mean_speed: float = 10.0
    config: ScenarioConfig = field(default_factory=ScenarioConfig)
    label: str = ""

    def __post_init__(self) -> None:
        check_non_negative("buffer_width", self.buffer_width)
        check_non_negative("mean_speed", self.mean_speed)

    def describe(self) -> str:
        """Display label for reports."""
        if self.label:
            return self.label
        parts = [self.protocol, self.mechanism]
        if self.buffer_width:
            parts.append(f"buf{self.buffer_width:g}")
        if self.physical_neighbor_mode:
            parts.append("pn")
        parts.append(f"v{self.mean_speed:g}")
        return "+".join(parts)

    def with_(self, **changes) -> "ExperimentSpec":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)

    def as_dict(self) -> dict:
        """Plain-JSON form with every field, numerics coerced to canon.

        Floats are coerced to ``float`` and flags to ``bool`` so two specs
        that are semantically equal (e.g. ``buffer_width=10`` vs ``10.0``)
        serialize identically — work-unit IDs hash this form.  The
        ``propagation`` / ``propagation_params`` config keys are emitted
        only when non-default, so every unit-disk spec keeps the exact
        canonical JSON (and orchestrator unit id) it had before the
        propagation seam existed.
        """
        cfg = self.config
        out = {
            "protocol": self.protocol,
            "protocol_kwargs": dict(self.protocol_kwargs),
            "mechanism": self.mechanism,
            "mechanism_kwargs": dict(self.mechanism_kwargs),
            "buffer_width": float(self.buffer_width),
            "physical_neighbor_mode": bool(self.physical_neighbor_mode),
            "mean_speed": float(self.mean_speed),
            "label": self.label,
            "config": {
                "n_nodes": int(cfg.n_nodes),
                "area": [float(cfg.area.width), float(cfg.area.height)],
                "normal_range": float(cfg.normal_range),
                "duration": float(cfg.duration),
                "hello_interval": float(cfg.hello_interval),
                "hello_jitter": float(cfg.hello_jitter),
                "hello_expiry": float(cfg.hello_expiry),
                "history_depth": int(cfg.history_depth),
                "sample_rate": float(cfg.sample_rate),
                "warmup": float(cfg.warmup),
                "propagation_delay": float(cfg.propagation_delay),
                "max_clock_skew": float(cfg.max_clock_skew),
                "reactive_flood_delay": float(cfg.reactive_flood_delay),
                "hello_loss_rate": float(cfg.hello_loss_rate),
                "hello_tx_duration": float(cfg.hello_tx_duration),
            },
        }
        if cfg.propagation != "unit-disk" or cfg.propagation_params:
            out["config"]["propagation"] = str(cfg.propagation)
            out["config"]["propagation_params"] = {
                str(k): (float(v) if isinstance(v, (int, float)) else v)
                for k, v in sorted(cfg.propagation_params.items())
            }
        return out

    @staticmethod
    def from_dict(data: dict) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`as_dict` output.

        Missing config keys fall back to :class:`ScenarioConfig` defaults,
        so documents written before a field existed stay loadable.
        """
        cfg_data = dict(data.get("config", {}))
        area = cfg_data.pop("area", None)
        if area is not None:
            cfg_data["area"] = Area(float(area[0]), float(area[1]))
        return ExperimentSpec(
            protocol=str(data.get("protocol", "rng")),
            protocol_kwargs=dict(data.get("protocol_kwargs", {})),
            mechanism=str(data.get("mechanism", "baseline")),
            mechanism_kwargs=dict(data.get("mechanism_kwargs", {})),
            buffer_width=float(data.get("buffer_width", 0.0)),
            physical_neighbor_mode=bool(data.get("physical_neighbor_mode", False)),
            mean_speed=float(data.get("mean_speed", 10.0)),
            label=str(data.get("label", "")),
            config=ScenarioConfig(**cfg_data),
        )

    def to_json(self) -> str:
        """Canonical JSON text: sorted keys, compact separators.

        The canonical form is the hashing substrate for orchestrator work
        units (:func:`repro.orchestrator.units.unit_id`), so it must be
        stable: equal specs produce byte-equal JSON.
        """
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @staticmethod
    def from_json(text: str) -> "ExperimentSpec":
        """Parse :meth:`to_json` output back into a spec."""
        return ExperimentSpec.from_dict(json.loads(text))


def build_manager(spec: ExperimentSpec) -> MobilitySensitiveTopologyControl:
    """Instantiate the topology control stack an :class:`ExperimentSpec` names."""
    protocol = make_protocol(spec.protocol, **spec.protocol_kwargs)
    mechanism = make_mechanism(spec.mechanism, **spec.mechanism_kwargs)
    policy = BufferZonePolicy(width=spec.buffer_width, cap=spec.config.normal_range)
    return MobilitySensitiveTopologyControl(
        protocol,
        mechanism=mechanism,
        buffer_policy=policy,
        physical_neighbor_mode=spec.physical_neighbor_mode,
    )


def build_mobility(spec: ExperimentSpec, rng: np.random.Generator) -> MobilityModel:
    """Random-waypoint mobility at the spec's speed (static when speed = 0)."""
    cfg = spec.config
    if spec.mean_speed == 0.0:
        return StaticPlacement(cfg.area, cfg.n_nodes, cfg.duration, rng=rng)
    return RandomWaypoint(
        cfg.area, cfg.n_nodes, cfg.duration, mean_speed=spec.mean_speed, rng=rng
    )


def build_world(
    spec: ExperimentSpec,
    seed: int,
    faults: "FaultSchedule | None" = None,
    telemetry: "Telemetry | None" = None,
    hello_pipeline: str = "auto",
) -> NetworkWorld:
    """Construct the fully wired world for one repetition."""
    seeds = SeedSequenceFactory(seed)
    mobility = build_mobility(spec, seeds.rng("mobility"))
    manager = build_manager(spec)
    return NetworkWorld(
        spec.config,
        mobility,
        manager,
        seed=seed,
        faults=faults,
        telemetry=telemetry,
        hello_pipeline=hello_pipeline,
    )


@dataclass(frozen=True)
class RunStats:
    """Typed per-run counters: channel, decision cache, faults, telemetry.

    The typed replacement for the free-form ``channel_stats`` dict —
    every counter the run produced, as a named field with a fixed type.
    :meth:`as_dict` reproduces the legacy dict shape exactly (``fault_*``
    keys present only when a schedule was armed, telemetry excluded), so
    existing dict-shaped consumers keep working through the deprecated
    :attr:`RunResult.channel_stats` view.

    Attributes
    ----------
    hello_messages .. collisions:
        The channel's :class:`~repro.sim.radio.ChannelStats` counters.
    decision_cache_hits / decision_cache_misses / decision_cache_uncacheable:
        The manager's view-fingerprint decision-cache counters
        (:meth:`~repro.core.manager.MobilitySensitiveTopologyControl.cache_info`).
    fault_*:
        Injected-disturbance counters; all zero unless *faults_armed*.
    faults_armed:
        Whether a :class:`~repro.faults.FaultSchedule` was in force.
    gossip_*:
        Anti-entropy dissemination counters
        (:meth:`~repro.sim.world.NetworkWorld.gossip_stats`); emitted by
        :meth:`as_dict` only when *gossip_armed*, i.e. the run used the
        gossip consistency mechanism, so every other mechanism's dict —
        and every pinned digest of it — is untouched.
    propagation:
        Name of the run's propagation model (``"unit-disk"`` by
        default); together with ``propagation_losses`` emitted by
        :meth:`as_dict` only for non-unit-disk runs so the legacy dict
        shape — and every pinned digest of it — is untouched.
    telemetry:
        Frozen :class:`~repro.telemetry.TelemetrySummary` when the run
        was traced, else None.
    """

    hello_messages: int = 0
    data_transmissions: int = 0
    sync_messages: int = 0
    deliveries: int = 0
    hello_losses: int = 0
    collisions: int = 0
    propagation_losses: int = 0
    propagation: str = "unit-disk"
    decision_cache_hits: int = 0
    decision_cache_misses: int = 0
    decision_cache_uncacheable: int = 0
    fault_hello_drops: int = 0
    fault_suppressed_sends: int = 0
    fault_blocked_receptions: int = 0
    fault_stale_discards: int = 0
    fault_delayed_deliveries: int = 0
    fault_noisy_positions: int = 0
    faults_armed: bool = False
    gossip_rounds: int = 0
    gossip_messages: int = 0
    gossip_merged: int = 0
    gossip_maydays: int = 0
    gossip_armed: bool = False
    telemetry: TelemetrySummary | None = None

    @classmethod
    def from_world(
        cls, world: NetworkWorld, telemetry: "Telemetry | None" = None
    ) -> "RunStats":
        """Collect every counter from a finished world."""
        return cls(
            **world.channel.stats.as_dict(),
            **world.manager.cache_info(),
            **world.fault_stats(),
            **world.gossip_stats(),
            faults_armed=world.fault_injector is not None,
            gossip_armed=world.gossip is not None,
            propagation=world.propagation.name,
            telemetry=telemetry.summary() if telemetry is not None else None,
        )

    def as_dict(self) -> dict[str, int]:
        """Legacy ``channel_stats`` dict shape (bit-compatible).

        ``fault_*`` keys appear only when a schedule was armed, exactly
        as the pre-typed dict behaved; ``propagation`` /
        ``propagation_losses`` only when the run used a non-unit-disk
        model; the telemetry summary is not a counter and is excluded.
        """
        out = {
            "hello_messages": self.hello_messages,
            "data_transmissions": self.data_transmissions,
            "sync_messages": self.sync_messages,
            "deliveries": self.deliveries,
            "hello_losses": self.hello_losses,
            "collisions": self.collisions,
            "decision_cache_hits": self.decision_cache_hits,
            "decision_cache_misses": self.decision_cache_misses,
            "decision_cache_uncacheable": self.decision_cache_uncacheable,
        }
        if self.propagation != "unit-disk":
            out["propagation"] = self.propagation
            out["propagation_losses"] = self.propagation_losses
        if self.faults_armed:
            out.update(
                fault_hello_drops=self.fault_hello_drops,
                fault_suppressed_sends=self.fault_suppressed_sends,
                fault_blocked_receptions=self.fault_blocked_receptions,
                fault_stale_discards=self.fault_stale_discards,
                fault_delayed_deliveries=self.fault_delayed_deliveries,
                fault_noisy_positions=self.fault_noisy_positions,
            )
        if self.gossip_armed:
            out.update(
                gossip_rounds=self.gossip_rounds,
                gossip_messages=self.gossip_messages,
                gossip_merged=self.gossip_merged,
                gossip_maydays=self.gossip_maydays,
            )
        return out

    def cache_info(self) -> dict[str, int]:
        """Decision-cache counters alone, ``cache_info()``-shaped."""
        return {
            "decision_cache_hits": self.decision_cache_hits,
            "decision_cache_misses": self.decision_cache_misses,
            "decision_cache_uncacheable": self.decision_cache_uncacheable,
        }


@dataclass(frozen=True)
class RunResult:
    """Per-sample series of one simulation run.

    ``stats`` is the typed :class:`RunStats` record — channel message
    counters, the manager's decision-cache counters, fault-injection
    counters, and (when the run was traced) the telemetry summary.  The
    pre-1.1 free-form dict is still reachable through the deprecated
    :attr:`channel_stats` property.
    """

    spec: ExperimentSpec
    seed: int
    delivery_ratios: np.ndarray
    mean_actual_ranges: np.ndarray
    mean_extended_ranges: np.ndarray
    mean_logical_degrees: np.ndarray
    mean_physical_degrees: np.ndarray
    strict_connected: np.ndarray
    stats: RunStats

    @property
    def channel_stats(self) -> dict:
        """Deprecated dict view of :attr:`stats` (use the typed fields)."""
        warnings.warn(
            "RunResult.channel_stats is deprecated and will be removed in "
            "repro 2.0; use RunResult.stats (typed RunStats) — .as_dict() "
            "reproduces this dict exactly",
            FutureWarning,
            stacklevel=2,
        )
        return self.stats.as_dict()

    @property
    def connectivity_ratio(self) -> float:
        """Mean flood delivery ratio over all samples."""
        return float(self.delivery_ratios.mean())

    @property
    def mean_transmission_range(self) -> float:
        """Mean in-force transmission range over nodes and samples."""
        return float(self.mean_extended_ranges.mean())

    @property
    def mean_logical_degree(self) -> float:
        """Mean logical degree over nodes and samples."""
        return float(self.mean_logical_degrees.mean())

    @property
    def mean_physical_degree(self) -> float:
        """Mean physical (in-extended-range) degree over nodes and samples."""
        return float(self.mean_physical_degrees.mean())


def run_once(
    spec: ExperimentSpec,
    seed: int = 0,
    faults: "FaultSchedule | None" = None,
    telemetry: "Telemetry | None" = None,
) -> RunResult:
    """Execute one repetition of *spec* and collect all per-sample metrics.

    When a :class:`~repro.faults.FaultSchedule` is supplied its ``fault_*``
    counters land in ``result.stats`` alongside the channel's own.  Pass a
    :class:`~repro.telemetry.Telemetry` collector (or arm one ambiently
    with :func:`repro.telemetry.use_telemetry`) to trace the run; its
    frozen summary is attached as ``result.stats.telemetry``.
    """
    if telemetry is None:
        telemetry = current_telemetry()
    if telemetry is not None and not telemetry.enabled:
        telemetry = None
    world = build_world(spec, seed, faults=faults, telemetry=telemetry)
    cfg = spec.config
    seeds = SeedSequenceFactory(seed)
    source_rng = seeds.rng("flood-sources")
    sample_times = np.arange(
        cfg.warmup, cfg.duration + 1e-9, 1.0 / cfg.sample_rate
    )
    if telemetry is not None:
        telemetry.event(
            "run_start", t=0.0, seed=seed, label=spec.label,
            n_nodes=cfg.n_nodes, duration=cfg.duration,
        )
    delivery, act_rng, ext_rng, ldeg, pdeg, strict = [], [], [], [], [], []
    for t in sample_times:
        world.run_until(float(t))
        source = int(source_rng.integers(cfg.n_nodes))
        result = flood(world, source)
        if telemetry is not None:
            telemetry.count("floods")
            telemetry.event(
                "flood", t=float(t), node=source,
                delivery_ratio=result.delivery_ratio,
            )
        delivery.append(result.delivery_ratio)
        snap = world.snapshot()
        topo = sample_topology(snap)
        act_rng.append(topo.mean_actual_range)
        ext_rng.append(topo.mean_extended_range)
        ldeg.append(topo.mean_logical_degree)
        pdeg.append(topo.mean_physical_degree)
        strict.append(strictly_connected(snap, world.manager.physical_neighbor_mode))
    if telemetry is not None:
        telemetry.event(
            "run_end", t=float(cfg.duration), seed=seed,
            samples=len(sample_times),
        )
    return RunResult(
        spec=spec,
        seed=seed,
        delivery_ratios=np.asarray(delivery),
        mean_actual_ranges=np.asarray(act_rng),
        mean_extended_ranges=np.asarray(ext_rng),
        mean_logical_degrees=np.asarray(ldeg),
        mean_physical_degrees=np.asarray(pdeg),
        strict_connected=np.asarray(strict, dtype=bool),
        stats=RunStats.from_world(world, telemetry=telemetry),
    )


@dataclass(frozen=True)
class AggregateResult:
    """Repetition-averaged metrics with 95 % confidence intervals."""

    spec: ExperimentSpec
    n_repetitions: int
    connectivity: Estimate
    transmission_range: Estimate
    logical_degree: Estimate
    physical_degree: Estimate
    strict_connectivity: Estimate

    def row(self) -> dict:
        """Flat dict row for tables / CSV."""
        return {
            "label": self.spec.describe(),
            "protocol": self.spec.protocol,
            "mechanism": self.spec.mechanism,
            "buffer": self.spec.buffer_width,
            "pn": self.spec.physical_neighbor_mode,
            "speed": self.spec.mean_speed,
            "connectivity": self.connectivity.mean,
            "connectivity_ci": self.connectivity.half_width,
            "tx_range": self.transmission_range.mean,
            "logical_degree": self.logical_degree.mean,
            "physical_degree": self.physical_degree.mean,
            "strict": self.strict_connectivity.mean,
        }


def _run_once_star(args: tuple[ExperimentSpec, int, bool]) -> RunResult:
    """Top-level helper so ProcessPoolExecutor can pickle the call.

    Failures are wrapped in :class:`~repro.util.errors.WorkUnitError`
    naming the failing ``(spec, seed)`` unit, so the parent sees which
    repetition died instead of a bare pickled traceback.  When
    *collect_telemetry* is set, the run is traced with a process-local
    collector and the frozen summary rides back on ``result.stats`` for
    the parent to merge (see :meth:`repro.telemetry.Telemetry.absorb`).
    """
    spec, seed, collect_telemetry = args
    telemetry = Telemetry() if collect_telemetry else None
    try:
        return run_once(spec, seed=seed, telemetry=telemetry)
    except WorkUnitError:
        raise
    except Exception as exc:
        raise WorkUnitError(
            spec.describe(), seed, f"{type(exc).__name__}: {exc}"
        ) from exc


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (default 1 = sequential)."""
    raw = os.environ.get("REPRO_WORKERS", "1")
    try:
        return max(1, int(raw))
    except ValueError:
        warnings.warn(
            f"ignoring invalid REPRO_WORKERS={raw!r} (not an integer); "
            "falling back to 1 worker",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1


def aggregate_runs(
    spec: ExperimentSpec, runs: list[RunResult], n_repetitions: int | None = None
) -> AggregateResult:
    """Fold per-seed :class:`RunResult` rows into one :class:`AggregateResult`.

    *runs* must be in seed order for bit-stable confidence intervals.
    ``n_repetitions`` defaults to ``len(runs)`` (it can be fewer than
    requested when the orchestrator quarantined failing units).
    """
    if not runs:
        raise ValueError(f"no completed runs to aggregate for {spec.describe()!r}")
    return AggregateResult(
        spec=spec,
        n_repetitions=len(runs) if n_repetitions is None else n_repetitions,
        connectivity=mean_ci([r.connectivity_ratio for r in runs]),
        transmission_range=mean_ci([r.mean_transmission_range for r in runs]),
        logical_degree=mean_ci([r.mean_logical_degree for r in runs]),
        physical_degree=mean_ci([r.mean_physical_degree for r in runs]),
        strict_connectivity=mean_ci([float(r.strict_connected.mean()) for r in runs]),
    )


def run_repetitions_many(
    specs: list[ExperimentSpec],
    repetitions: int = 5,
    base_seed: int = 1000,
    workers: int | None = None,
) -> list[AggregateResult]:
    """Run *repetitions* seeds of every spec and aggregate each.

    The whole batch — every ``(spec, seed)`` pair — is fanned out at
    once, so a multi-point sweep keeps all workers busy instead of
    barriering between sweep points.  Seeds are ``base_seed + i`` per
    spec, exactly as :func:`run_repetitions` assigns them, so results are
    bit-identical to per-spec calls at any worker count.

    When an :class:`~repro.orchestrator.OrchestrationContext` is ambient
    (see :func:`repro.orchestrator.use_orchestrator`), the batch routes
    through its checkpointed work-unit pipeline instead: completed units
    are loaded from the :class:`~repro.orchestrator.RunStore`, failures
    are retried and quarantined per unit, and fresh results are persisted
    incrementally.

    When an ambient telemetry collector is armed and the batch runs in
    worker processes, each worker traces its own runs and the parent
    merges the per-unit summaries into the collector — telemetry no
    longer forces single-worker execution.
    """
    check_int_range("repetitions", repetitions, 1)
    orchestrator = current_orchestrator()
    if orchestrator is not None:
        runs_per_spec = orchestrator.run_spec_batch(specs, repetitions, base_seed)
        return [
            aggregate_runs(spec, runs)
            for spec, runs in zip(specs, runs_per_spec)
        ]
    workers = default_workers() if workers is None else max(1, int(workers))
    telemetry = current_telemetry()
    if telemetry is not None and not telemetry.enabled:
        telemetry = None
    parallel = workers > 1 and len(specs) * repetitions > 1
    collect = telemetry is not None and parallel
    jobs = [
        (spec, base_seed + i, collect)
        for spec in specs
        for i in range(repetitions)
    ]
    if not parallel:
        runs = [run_once(s, seed=seed) for s, seed, _ in jobs]
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
            runs = list(pool.map(_run_once_star, jobs))
        if collect:
            for run in runs:
                if run.stats.telemetry is not None:
                    telemetry.absorb(run.stats.telemetry, source=run.seed)
    return [
        aggregate_runs(spec, runs[k * repetitions : (k + 1) * repetitions])
        for k, spec in enumerate(specs)
    ]


def run_repetitions(
    spec: ExperimentSpec,
    repetitions: int = 5,
    base_seed: int = 1000,
    workers: int | None = None,
) -> AggregateResult:
    """Run *repetitions* independent seeds of *spec* and aggregate.

    Parameters
    ----------
    workers:
        Processes to spread repetitions over; default from the
        ``REPRO_WORKERS`` environment variable (1 = in-process).  Results
        are identical regardless of worker count — seeds, not schedulers,
        define each run.

    See :func:`run_repetitions_many` for batching several specs into one
    fan-out and for how ambient orchestration / telemetry contexts are
    honoured.
    """
    return run_repetitions_many(
        [spec], repetitions=repetitions, base_seed=base_seed, workers=workers
    )[0]
