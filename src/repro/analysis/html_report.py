"""Standalone HTML report rendering (tables + inline SVG charts).

EXPERIMENTS.md is the canonical diffable artifact; this module renders the
same campaign data as a single self-contained HTML file — no external
assets, no JavaScript — for sharing results with people who will not read
a terminal.  The SVG charts are drawn directly (no plotting dependency).
"""

from __future__ import annotations

import html
from collections.abc import Sequence

from repro.analysis.campaign import CampaignResult

__all__ = ["svg_chart", "render_html_report", "write_html_report"]

_PALETTE = ("#4363d8", "#e6194B", "#3cb44b", "#f58231", "#911eb4",
            "#42d4f4", "#f032e6", "#9A6324")


def svg_chart(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 560,
    height: int = 280,
    y_range: tuple[float, float] | None = None,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (xs, ys) curves as a standalone ``<svg>`` element."""
    if not series:
        return "<svg/>"
    margin = 48
    plot_w, plot_h = width - 2 * margin, height - 2 * margin
    all_x = [x for xs, _ in series.values() for x in xs]
    all_y = [y for _, ys in series.values() for y in ys]
    if not all_x:
        return "<svg/>"
    x_lo, x_hi = min(all_x), max(all_x)
    if y_range is None:
        y_lo, y_hi = min(all_y), max(all_y)
    else:
        y_lo, y_hi = y_range
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    def sx(x: float) -> float:
        return margin + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return margin + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height + 18 * len(series)}" font-family="sans-serif" font-size="11">'
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="16" text-anchor="middle" '
            f'font-size="13">{html.escape(title)}</text>'
        )
    # axes
    parts.append(
        f'<rect x="{margin}" y="{margin}" width="{plot_w}" height="{plot_h}" '
        'fill="none" stroke="#888"/>'
    )
    for frac in (0.0, 0.5, 1.0):
        y_val = y_lo + frac * (y_hi - y_lo)
        parts.append(
            f'<text x="{margin - 6}" y="{sy(y_val) + 4}" text-anchor="end">'
            f"{y_val:.2f}</text>"
        )
        x_val = x_lo + frac * (x_hi - x_lo)
        parts.append(
            f'<text x="{sx(x_val)}" y="{margin + plot_h + 14}" '
            f'text-anchor="middle">{x_val:g}</text>'
        )
    parts.append(
        f'<text x="{width / 2}" y="{margin + plot_h + 30}" text-anchor="middle">'
        f"{html.escape(x_label)}</text>"
    )
    parts.append(
        f'<text x="14" y="{margin + plot_h / 2}" text-anchor="middle" '
        f'transform="rotate(-90 14 {margin + plot_h / 2})">{html.escape(y_label)}</text>'
    )
    # curves + legend
    legend_y = height + 4
    for idx, (label, (xs, ys)) in enumerate(series.items()):
        color = _PALETTE[idx % len(_PALETTE)]
        pts = " ".join(f"{sx(float(x)):.1f},{sy(float(y)):.1f}" for x, y in zip(xs, ys))
        parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{color}" stroke-width="1.6"/>'
        )
        for x, y in zip(xs, ys):
            parts.append(
                f'<circle cx="{sx(float(x)):.1f}" cy="{sy(float(y)):.1f}" '
                f'r="2.6" fill="{color}"/>'
            )
        parts.append(
            f'<rect x="{margin}" y="{legend_y + 18 * idx}" width="12" height="3" '
            f'fill="{color}"/>'
            f'<text x="{margin + 18}" y="{legend_y + 6 + 18 * idx}">'
            f"{html.escape(label)}</text>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _html_table(rows: list[dict]) -> str:
    if not rows:
        return "<p><em>(no data)</em></p>"
    cols = list(rows[0].keys())

    def cell(v: object) -> str:
        if isinstance(v, bool):
            return "yes" if v else "no"
        if isinstance(v, float):
            return f"{v:.3f}"
        return html.escape("" if v is None else str(v))

    out = ["<table><thead><tr>"]
    out.extend(f"<th>{html.escape(c)}</th>" for c in cols)
    out.append("</tr></thead><tbody>")
    for row in rows:
        out.append("<tr>" + "".join(f"<td>{cell(row.get(c))}</td>" for c in cols) + "</tr>")
    out.append("</tbody></table>")
    return "".join(out)


def _figure_section(figure, heading: str) -> str:
    series = {s.label: (s.xs(), s.y(figure.metric)) for s in figure.series}
    y_range = (0.0, 1.0) if figure.metric == "connectivity" else None
    x_name = figure.series[0].x_name if figure.series else "x"
    chart = svg_chart(
        series, y_range=y_range, title=figure.title,
        x_label=x_name, y_label=figure.metric,
    )
    return (
        f"<section><h2>{html.escape(heading)}</h2>{chart}"
        f"<details><summary>data</summary>{_html_table(figure.rows())}</details>"
        "</section>"
    )


_STYLE = """
body { font-family: sans-serif; max-width: 60rem; margin: 2rem auto; color: #222; }
table { border-collapse: collapse; margin: .6rem 0; font-size: .85rem; }
td, th { border: 1px solid #ccc; padding: .25rem .5rem; text-align: right; }
th { background: #f2f2f2; }
section { margin-bottom: 2rem; }
details { margin-top: .4rem; }
"""


def render_html_report(result: CampaignResult) -> str:
    """Render a campaign as one self-contained HTML page."""
    scale = result.scale
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>Mobility-sensitive topology control — reproduction report</title>",
        f"<style>{_STYLE}</style></head><body>",
        "<h1>Mobility-sensitive topology control — reproduction report</h1>",
        f"<p>Scale <b>{html.escape(scale.name)}</b>: {scale.n_nodes} nodes, "
        f"{scale.area_side:g} m square, {scale.duration:g} s, "
        f"{scale.repetitions} repetitions; base seed {result.base_seed}; "
        f"{result.wall_clock_s:.0f} s of simulation.</p>",
        "<section><h2>Table 1 — range and degree</h2>",
        _html_table(result.table1.rows()),
        "</section>",
        _figure_section(result.fig6, "Fig. 6 — baselines vs mobility"),
        _figure_section(result.fig7, "Fig. 7 — buffer zones alone"),
        _figure_section(result.fig8a, "Fig. 8a — transmission range vs buffer"),
        _figure_section(result.fig8b, "Fig. 8b — physical neighbors vs buffer"),
        _figure_section(result.fig9, "Fig. 9 — view synchronization"),
        _figure_section(result.fig10, "Fig. 10 — physical-neighbor forwarding"),
        "</body></html>",
    ]
    return "".join(parts)


def write_html_report(result: CampaignResult, path) -> None:
    """Render and write the HTML report to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_html_report(result))
