"""Table 1 of the paper: baseline transmission range and node degree.

The paper's Table 1 reports, for each baseline protocol under the default
scenario, the average transmission range and average logical node degree —
demonstrating how much each protocol saves against the uncontrolled 250 m /
degree-18 network, and the redundancy ordering
MST < RNG ~ SPT-4 < SPT-2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.experiment import (
    AggregateResult,
    ExperimentSpec,
    run_repetitions_many,
)
from repro.analysis.paper_reference import TABLE1_PAPER
from repro.analysis.report import format_table
from repro.analysis.scales import QUICK, Scale

__all__ = ["Table1Result", "generate_table1"]

#: Presentation order, with the uncontrolled reference first.
_ORDER = ("none", "mst", "rng", "spt4", "spt2")


@dataclass(frozen=True)
class Table1Result:
    """Measured Table 1 plus the paper's reference values."""

    scale: Scale
    results: dict[str, AggregateResult]

    def rows(self) -> list[dict]:
        """Paper-vs-measured rows in presentation order."""
        out = []
        for name in _ORDER:
            agg = self.results.get(name)
            if agg is None:
                continue
            ref = TABLE1_PAPER.get(name)
            out.append(
                {
                    "protocol": name,
                    "tx_range_m": agg.transmission_range.mean,
                    "tx_range_ci": agg.transmission_range.half_width,
                    "degree": agg.logical_degree.mean,
                    "degree_ci": agg.logical_degree.half_width,
                    "paper_range": ref.tx_range_m if ref else None,
                    "paper_degree": ref.degree if ref else None,
                }
            )
        return out

    def format(self) -> str:
        """ASCII rendering with the paper's values alongside."""
        return format_table(
            self.rows(),
            title=(
                f"Table 1 — average transmission range and logical degree "
                f"(scale={self.scale.name}, {self.scale.repetitions} reps)"
            ),
        )

    def ordering_by_range(self) -> list[str]:
        """Controlled protocols sorted by measured mean range (ascending)."""
        controlled = [n for n in _ORDER if n != "none" and n in self.results]
        return sorted(controlled, key=lambda n: self.results[n].transmission_range.mean)

    def ordering_by_degree(self) -> list[str]:
        """Controlled protocols sorted by measured mean degree (ascending)."""
        controlled = [n for n in _ORDER if n != "none" and n in self.results]
        return sorted(controlled, key=lambda n: self.results[n].logical_degree.mean)


def generate_table1(
    scale: Scale = QUICK,
    base_seed: int = 2000,
    speed: float = 1.0,
    include_reference: bool = True,
    workers: int | None = None,
) -> Table1Result:
    """Measure Table 1 at the given *scale*.

    Runs every baseline protocol with the mobility-insensitive mechanism,
    no buffer zone, at the (low) given speed — range and degree are
    essentially mobility-independent, so the table uses the gentlest sweep
    point.
    """
    protocols = list(_ORDER) if include_reference else [n for n in _ORDER if n != "none"]
    specs = [
        ExperimentSpec(
            protocol=name,
            mechanism="baseline",
            buffer_width=0.0,
            mean_speed=speed,
            config=scale.config(),
        )
        for name in protocols
    ]
    aggs = run_repetitions_many(
        specs,
        repetitions=scale.repetitions,
        base_seed=base_seed,
        workers=workers,
    )
    results: dict[str, AggregateResult] = dict(zip(protocols, aggs))
    return Table1Result(scale=scale, results=results)
