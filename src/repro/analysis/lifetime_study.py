"""Network-lifetime study: the paper's energy motivation, quantified.

Topology control exists "to reduce energy consumption and signal
interference" (Section 1).  This study turns the range savings of Table 1
into the operational quantity deployments care about — *network lifetime*
under a per-node energy budget:

- every node pays the Hello cost each interval (Hellos go out at the
  normal range, for every protocol — the paper's control plane);
- every flood forwarder pays the data cost at its current extended range;
- a node whose budget hits zero dies; lifetime metrics follow the
  fraction of nodes still alive and the time of first death.

Because Hello costs are identical across protocols, differences isolate
exactly what the protocols control: the data-plane transmission range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.experiment import ExperimentSpec, build_world
from repro.metrics.energy import EnergyModel
from repro.sim.flood import flood
from repro.util.randomness import SeedSequenceFactory
from repro.util.validate import check_positive

__all__ = ["LifetimeResult", "run_lifetime_study"]


@dataclass(frozen=True)
class LifetimeResult:
    """Energy-drain outcome of one configuration.

    Attributes
    ----------
    spec:
        Configuration simulated.
    budget:
        Per-node energy budget (arbitrary units matching the model).
    first_death:
        Time the first node ran out (inf if none did).
    alive_fraction_end:
        Fraction of nodes still alive at the end of the run.
    mean_data_energy_per_step:
        Mean per-probe data-plane energy (the protocol-controlled part).
    """

    spec: ExperimentSpec
    budget: float
    first_death: float
    alive_fraction_end: float
    mean_data_energy_per_step: float

    def row(self) -> dict:
        """Flat dict row for tables."""
        return {
            "configuration": self.spec.describe(),
            "first_death_s": self.first_death,
            "alive_at_end": self.alive_fraction_end,
            "data_energy_per_probe": self.mean_data_energy_per_step,
        }


def run_lifetime_study(
    spec: ExperimentSpec,
    budget: float,
    seed: int = 0,
    energy_model: EnergyModel | None = None,
    hello_cost_fraction: float = 1.0,
) -> LifetimeResult:
    """Drain per-node budgets over one simulated run.

    Parameters
    ----------
    budget:
        Per-node energy budget in the model's units.
    energy_model:
        Transmit-cost model (default alpha = 2, no overhead).
    hello_cost_fraction:
        Hello transmissions cost this fraction of a data transmission at
        the same range (control packets are short).
    """
    check_positive("budget", budget)
    model = energy_model or EnergyModel()
    world = build_world(spec, seed)
    cfg = spec.config
    rng = SeedSequenceFactory(seed).rng("lifetime-sources")
    n = cfg.n_nodes
    remaining = np.full(n, float(budget))
    death_time = np.full(n, np.inf)
    hello_cost = hello_cost_fraction * float(model.per_message(cfg.normal_range))
    last_hello_counts = np.zeros(n)
    data_energies: list[float] = []

    sample_times = np.arange(cfg.warmup, cfg.duration + 1e-9, 1.0 / cfg.sample_rate)
    for t in sample_times:
        world.run_until(float(t))
        # Hello drain since the last sample.
        counts = np.array([node.hellos_sent for node in world.nodes], dtype=float)
        alive = remaining > 0
        remaining -= (counts - last_hello_counts) * hello_cost * alive
        last_hello_counts = counts
        # One data probe: forwarders pay at their extended range.
        probe = flood(world, source=int(rng.integers(n)))
        snap = world.snapshot()
        costs = np.where(probe.reached, model.per_message(snap.extended_ranges), 0.0)
        data_energies.append(float(costs[alive].sum()))
        remaining -= costs * alive
        newly_dead = (remaining <= 0) & np.isinf(death_time)
        death_time[newly_dead] = float(t)
    return LifetimeResult(
        spec=spec,
        budget=budget,
        first_death=float(death_time.min(initial=np.inf)),
        alive_fraction_end=float((remaining > 0).mean()),
        mean_data_energy_per_step=float(np.mean(data_energies)) if data_energies else 0.0,
    )
