"""Figures 6-10 of the paper: the connectivity / mobility sweeps.

Each generator returns a :class:`FigureResult` holding every curve as
aggregate estimates, with paper-claim annotations, ASCII rendering, and CSV
rows.  The sweeps:

- **Fig. 6** — baseline connectivity ratio vs speed (all protocols).
- **Fig. 7** — connectivity vs speed for several buffer widths, per
  protocol (buffer zone alone).
- **Fig. 8** — (a) average transmission range and (b) average physical
  neighbor count vs buffer width.
- **Fig. 9** — Fig. 7 with the view-synchronization mechanism.
- **Fig. 10** — Fig. 7 with physical-neighbor forwarding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.experiment import (
    AggregateResult,
    ExperimentSpec,
    run_repetitions_many,
)
from repro.analysis.paper_reference import (
    BASELINE_PROTOCOLS,
    MODERATE_SPEED,
    TARGET_CONNECTIVITY,
)
from repro.analysis.report import format_table
from repro.analysis.scales import QUICK, Scale

__all__ = [
    "FigurePoint",
    "FigureSeries",
    "FigureResult",
    "generate_fig6",
    "generate_fig7",
    "generate_fig8",
    "generate_fig9",
    "generate_fig10",
    "minimal_tolerating_buffer",
    "compare_figures",
]


@dataclass(frozen=True)
class FigurePoint:
    """One point of one curve."""

    x: float
    result: AggregateResult


@dataclass(frozen=True)
class FigureSeries:
    """One curve: a labelled sweep along x."""

    label: str
    x_name: str
    points: tuple[FigurePoint, ...]

    def y(self, metric: str = "connectivity") -> list[float]:
        """Curve y-values for a metric attribute of the aggregates."""
        return [getattr(p.result, metric).mean for p in self.points]

    def xs(self) -> list[float]:
        """Curve x-values."""
        return [p.x for p in self.points]


@dataclass(frozen=True)
class FigureResult:
    """A regenerated figure: all curves plus provenance."""

    figure_id: str
    title: str
    scale: Scale
    series: tuple[FigureSeries, ...] = field(default_factory=tuple)
    metric: str = "connectivity"

    def rows(self) -> list[dict]:
        """Flat rows (series label, x, y, ci) for tables and CSV."""
        out = []
        for s in self.series:
            for p in s.points:
                est = getattr(p.result, self.metric)
                out.append(
                    {
                        "series": s.label,
                        s.x_name: p.x,
                        self.metric: est.mean,
                        "ci": est.half_width,
                    }
                )
        return out

    def format(self) -> str:
        """ASCII rendering of all curves."""
        return format_table(
            self.rows(),
            title=f"{self.figure_id} — {self.title} (scale={self.scale.name})",
        )

    def series_by_label(self, label: str) -> FigureSeries:
        """Look up one curve by its label."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in {self.figure_id}")


def _speed_sweep(
    protocol: str,
    scale: Scale,
    base_seed: int,
    mechanism: str = "baseline",
    buffer_width: float = 0.0,
    physical_neighbor_mode: bool = False,
    label: str | None = None,
    workers: int | None = None,
) -> FigureSeries:
    """Run one protocol/config over the scale's speed grid.

    The whole grid goes through :func:`run_repetitions_many` as one batch,
    so every (speed, seed) unit fans out together — no per-point barrier —
    and an armed orchestrator checkpoints each unit as it lands.
    """
    specs = [
        ExperimentSpec(
            protocol=protocol,
            mechanism=mechanism,
            buffer_width=buffer_width,
            physical_neighbor_mode=physical_neighbor_mode,
            mean_speed=speed,
            config=scale.config(),
        )
        for speed in scale.speeds
    ]
    aggs = run_repetitions_many(
        specs,
        repetitions=scale.repetitions,
        base_seed=base_seed,
        workers=workers,
    )
    points = [
        FigurePoint(x=speed, result=agg)
        for speed, agg in zip(scale.speeds, aggs)
    ]
    return FigureSeries(
        label=label or protocol, x_name="speed_mps", points=tuple(points)
    )


def generate_fig6(
    scale: Scale = QUICK, base_seed: int = 3000, workers: int | None = None
) -> FigureResult:
    """Fig. 6: connectivity ratio of the baseline protocols vs speed."""
    series = tuple(
        _speed_sweep(p, scale, base_seed, workers=workers)
        for p in BASELINE_PROTOCOLS
    )
    return FigureResult(
        figure_id="fig6",
        title="connectivity ratio of baseline protocols",
        scale=scale,
        series=series,
    )


def _buffer_family(
    scale: Scale,
    base_seed: int,
    mechanism: str,
    physical_neighbor_mode: bool,
    figure_id: str,
    title: str,
    workers: int | None = None,
) -> FigureResult:
    """Figs. 7/9/10 share this shape: per protocol, one curve per buffer."""
    series = []
    for protocol in BASELINE_PROTOCOLS:
        for width in scale.buffer_widths:
            series.append(
                _speed_sweep(
                    protocol,
                    scale,
                    base_seed,
                    mechanism=mechanism,
                    buffer_width=width,
                    physical_neighbor_mode=physical_neighbor_mode,
                    label=f"{protocol}+buf{width:g}",
                    workers=workers,
                )
            )
    return FigureResult(
        figure_id=figure_id, title=title, scale=scale, series=tuple(series)
    )


def generate_fig7(
    scale: Scale = QUICK, base_seed: int = 3700, workers: int | None = None
) -> FigureResult:
    """Fig. 7: connectivity with different buffer widths (buffer alone)."""
    return _buffer_family(
        scale,
        base_seed,
        mechanism="baseline",
        physical_neighbor_mode=False,
        figure_id="fig7",
        title="connectivity ratio with different buffer zone widths",
        workers=workers,
    )


def generate_fig9(
    scale: Scale = QUICK, base_seed: int = 3900, workers: int | None = None
) -> FigureResult:
    """Fig. 9: connectivity with view synchronization + buffer zones."""
    return _buffer_family(
        scale,
        base_seed,
        mechanism="view-sync",
        physical_neighbor_mode=False,
        figure_id="fig9",
        title="connectivity ratio with and without view synchronization",
        workers=workers,
    )


def generate_fig10(
    scale: Scale = QUICK, base_seed: int = 4100, workers: int | None = None
) -> FigureResult:
    """Fig. 10: connectivity with physical-neighbor forwarding + buffers."""
    return _buffer_family(
        scale,
        base_seed,
        mechanism="baseline",
        physical_neighbor_mode=True,
        figure_id="fig10",
        title="connectivity ratio before and after using physical neighbors",
        workers=workers,
    )


def generate_fig8(
    scale: Scale = QUICK,
    base_seed: int = 3800,
    speed: float = MODERATE_SPEED,
    widths: tuple[float, ...] | None = None,
    workers: int | None = None,
) -> tuple[FigureResult, FigureResult]:
    """Fig. 8: (a) tx range and (b) physical degree vs buffer width.

    Returns the two panels as separate :class:`FigureResult` objects with
    metrics ``transmission_range`` and ``physical_degree``.
    """
    widths = widths or tuple(sorted(set(scale.buffer_widths) | {30.0}))
    series_range = []
    series_pdeg = []
    for protocol in BASELINE_PROTOCOLS:
        specs = [
            ExperimentSpec(
                protocol=protocol,
                mechanism="baseline",
                buffer_width=width,
                mean_speed=speed,
                config=scale.config(),
            )
            for width in widths
        ]
        aggs = run_repetitions_many(
            specs,
            repetitions=scale.repetitions,
            base_seed=base_seed,
            workers=workers,
        )
        pts = [
            FigurePoint(x=width, result=agg)
            for width, agg in zip(widths, aggs)
        ]
        series_range.append(
            FigureSeries(label=protocol, x_name="buffer_m", points=tuple(pts))
        )
        series_pdeg.append(
            FigureSeries(label=protocol, x_name="buffer_m", points=tuple(pts))
        )
    fig8a = FigureResult(
        figure_id="fig8a",
        title="average transmission range vs buffer zone width",
        scale=scale,
        series=tuple(series_range),
        metric="transmission_range",
    )
    fig8b = FigureResult(
        figure_id="fig8b",
        title="average physical neighbors vs buffer zone width",
        scale=scale,
        series=tuple(series_pdeg),
        metric="physical_degree",
    )
    return fig8a, fig8b


def compare_figures(
    figure_a: FigureResult,
    figure_b: FigureResult,
    metric: str = "connectivity",
) -> list[dict]:
    """Per-point deltas between two figures with matching series/points.

    The paper presents Figs. 9 and 10 as *with-vs-without* comparisons
    against Fig. 7; this helper produces those delta rows (B - A) for any
    two figures whose series labels and x grids coincide — generate both
    with the same base seed for exactly-paired worlds.

    Series or points present in only one figure are skipped (coarser grids
    compare on their intersection).
    """
    rows: list[dict] = []
    b_series = {s.label: s for s in figure_b.series}
    for series_a in figure_a.series:
        series_b = b_series.get(series_a.label)
        if series_b is None:
            continue
        b_points = {p.x: p for p in series_b.points}
        for point_a in series_a.points:
            point_b = b_points.get(point_a.x)
            if point_b is None:
                continue
            a_val = getattr(point_a.result, metric).mean
            b_val = getattr(point_b.result, metric).mean
            rows.append(
                {
                    "series": series_a.label,
                    series_a.x_name: point_a.x,
                    f"{metric}_a": a_val,
                    f"{metric}_b": b_val,
                    "delta": b_val - a_val,
                }
            )
    return rows


def minimal_tolerating_buffer(
    figure: FigureResult,
    protocol: str,
    moderate_speed: float = MODERATE_SPEED,
    target: float = TARGET_CONNECTIVITY,
) -> float | None:
    """Smallest swept buffer width whose curve tolerates moderate mobility.

    "Tolerates" per the paper: connectivity >= *target* at every swept
    speed <= *moderate_speed*.  Returns None when no swept width works —
    matching how Figs. 7/9/10 are summarised in the text.
    """
    best: float | None = None
    for s in figure.series:
        if not s.label.startswith(f"{protocol}+buf"):
            continue
        width = float(s.label.split("+buf", 1)[1])
        ok = all(
            p.result.connectivity.mean >= target
            for p in s.points
            if p.x <= moderate_speed
        )
        if ok and (best is None or width < best):
            best = width
    return best
