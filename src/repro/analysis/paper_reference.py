"""The paper's reported numbers and qualitative claims, as data.

Everything the evaluation section states quantitatively is recorded here so
reports can print paper-vs-measured side by side and tests can assert the
qualitative *shape* (orderings, crossovers) without hard-coding magic
numbers in many places.

Values marked approximate are read off the paper's prose/figures; the
exact Table 1 row is only given numerically for SPT-2 (100 m, 3.46) and
MST's degree (2.09), so the others carry the ordering claims instead.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "TABLE1_PAPER",
    "FIG6_CLAIMS",
    "FIG7_CLAIMS",
    "FIG8_CLAIMS",
    "FIG9_CLAIMS",
    "FIG10_CLAIMS",
    "BASELINE_PROTOCOLS",
    "MODERATE_SPEED",
    "TARGET_CONNECTIVITY",
]

#: The four baselines of Section 5, in the paper's presentation order.
BASELINE_PROTOCOLS = ("mst", "rng", "spt4", "spt2")

#: "moderate mobility" = average speed <= 40 m/s (Section 5.2).
MODERATE_SPEED = 40.0

#: The paper's bar for "tolerating" a mobility level.
TARGET_CONNECTIVITY = 0.90


@dataclass(frozen=True)
class Table1Row:
    """One baseline's Table 1 entry (None = not stated numerically)."""

    protocol: str
    tx_range_m: float | None
    degree: float | None
    approximate: bool = False


#: Table 1 — average transmission range / logical degree, plus the
#: no-topology-control reference row (250 m, ~18).
TABLE1_PAPER: dict[str, Table1Row] = {
    "none": Table1Row("none", 250.0, 18.0, approximate=True),
    "mst": Table1Row("mst", 65.0, 2.09, approximate=True),  # degree exact, range from Fig. 8a
    "rng": Table1Row("rng", 78.0, 2.5, approximate=True),  # Fig. 8a: 88 m at 10 m buffer
    "spt4": Table1Row("spt4", 80.0, 2.8, approximate=True),
    "spt2": Table1Row("spt2", 100.0, 3.46),
}

#: Fig. 6 — baseline connectivity ratios (approximate read-offs at 1 m/s)
#: and the ordering claim SPT-2 > RNG > SPT-4 > MST at every speed.
FIG6_CLAIMS = {
    "at_1mps": {"spt2": 0.95, "rng": 0.50, "spt4": 0.40, "mst": 0.10},
    "ordering": ("spt2", "rng", "spt4", "mst"),
    "all_vulnerable": "every baseline drops well below 90% by 20 m/s except none",
}

#: Fig. 7 — smallest buffer width (m) that tolerates moderate mobility
#: (>= 90% connectivity at <= 40 m/s) with buffer zones ALONE; None = not
#: achieved even at 100 m.
FIG7_CLAIMS = {
    "mst": None,  # tolerates only 1 m/s with a 10 m buffer
    "rng": 100.0,
    "spt4": 100.0,
    "spt2": 10.0,
}

#: Fig. 8a — average transmission range (m) at named operating points, and
#: Fig. 8b — average physical-neighbor count at the moderate-mobility
#: operating points of the PN experiment.
FIG8_CLAIMS = {
    "tx_range": {
        ("rng", 10.0): 88.0,
        ("spt2", 1.0): 98.0,
        ("spt2", 10.0): 120.0,
        ("rng", 100.0): 165.0,  # "above 160 m"
        ("spt4", 100.0): 165.0,
    },
    "physical_degree": {
        ("mst", 30.0): 4.7,
        ("rng", 10.0): 4.2,
        ("spt4", 10.0): 3.8,
        ("spt2", 1.0): 5.4,
    },
}

#: Fig. 9 — with view synchronization, smallest buffer width (m) that
#: tolerates moderate mobility.
FIG9_CLAIMS = {
    "mst": 100.0,
    "rng": 10.0,
    "spt4": 100.0,  # 20 m/s at 10 m, 40 m/s needs 100 m
    "spt2": 1.0,
}

#: Fig. 10 — with physical-neighbor forwarding, smallest buffer width (m)
#: that tolerates moderate mobility; plus the 100 m claim.
FIG10_CLAIMS = {
    "mst": 100.0,  # 93% already at 30 m
    "rng": 10.0,
    "spt4": 10.0,
    "spt2": 1.0,
    "at_100m_buffer": "every protocol reaches ~100% even at 160 m/s",
}
