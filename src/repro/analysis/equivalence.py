"""The speed-range equivalence claim of Section 5.1, as an experiment.

The paper justifies sweeping speeds far beyond vehicular ("up to
160 m/s") by a scaling argument: "when the transmission range is
33.375 m, the impact of a speed of 20 m/s is equivalent to that of
160 m/s in a MANET with a transmission range of 250 m" — i.e. what
matters is the *drift per Hello interval relative to the transmission
range*, ``v * Delta / R``.

:func:`generate_equivalence_study` puts that claim under test: it runs the
same protocol at several (range, speed) pairs sharing the mobility index
``v/R`` (deployment area scaled with the range so density is constant) and
at mismatched pairs, so reports can check that equal-index configurations
produce equal connectivity while unequal ones do not.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.experiment import ExperimentSpec, run_repetitions
from repro.analysis.scales import QUICK, Scale
from repro.mobility.base import Area
from repro.util.validate import check_positive

__all__ = ["EquivalencePoint", "generate_equivalence_study"]


@dataclass(frozen=True)
class EquivalencePoint:
    """One (range, speed) configuration and its measured connectivity."""

    normal_range: float
    speed: float
    mobility_index: float  # v / R, 1/s
    connectivity: float
    ci: float

    def row(self) -> dict:
        """Flat dict row for tables."""
        return {
            "range_m": self.normal_range,
            "speed_mps": self.speed,
            "v_over_R": self.mobility_index,
            "connectivity": self.connectivity,
            "ci": self.ci,
        }


def generate_equivalence_study(
    scale: Scale = QUICK,
    base_seed: int = 8200,
    protocol: str = "rng",
    range_factors: tuple[float, ...] = (1.0, 0.5, 0.25),
    mobility_indices: tuple[float, ...] = (0.04, 0.16, 0.64),
    workers: int | None = None,
) -> list[EquivalencePoint]:
    """Measure connectivity across the (range, speed) grid.

    For each range factor f the normal range is ``250 * f`` and the area
    side scales by f (constant density in *range units*); for each
    mobility index m the speed is ``m * R``.  Equal-m cells across range
    factors are the paper's "equivalent" configurations.
    """
    check_positive("base range", 250.0)
    base_cfg = scale.config()
    points: list[EquivalencePoint] = []
    for f in range_factors:
        rng_range = 250.0 * f
        side = scale.area_side * f
        cfg = replace(base_cfg, normal_range=rng_range, area=Area(side, side))
        for m in mobility_indices:
            speed = m * rng_range
            spec = ExperimentSpec(
                protocol=protocol,
                mechanism="baseline",
                buffer_width=0.0,
                mean_speed=speed,
                config=cfg,
            )
            agg = run_repetitions(
                spec,
                repetitions=scale.repetitions,
                base_seed=base_seed,
                workers=workers,
            )
            points.append(
                EquivalencePoint(
                    normal_range=rng_range,
                    speed=speed,
                    mobility_index=m,
                    connectivity=agg.connectivity.mean,
                    ci=agg.connectivity.half_width,
                )
            )
    return points
