"""Plain-text and CSV reporting for tables and figures.

The harness regenerates the paper's artifacts as ASCII tables (one row per
curve point) so results diff cleanly and read in CI logs; CSV export feeds
external plotting when wanted.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Iterable, Mapping, Sequence

__all__ = ["format_table", "rows_to_csv", "write_csv", "format_kv"]


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render dict rows as a fixed-width ASCII table.

    Parameters
    ----------
    rows:
        Mapping per row; missing keys render empty.
    columns:
        Column order (defaults to the keys of the first row).
    title:
        Optional heading line.
    float_format:
        Format applied to float cells.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no data)"
    cols = list(columns) if columns else list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return float_format.format(value)
        return "" if value is None else str(value)

    text_rows = [[cell(row.get(c)) for c in cols] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in text_rows)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in text_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def rows_to_csv(rows: Iterable[Mapping[str, object]], columns: Sequence[str] | None = None) -> str:
    """Serialise dict rows as CSV text."""
    rows = list(rows)
    if not rows:
        return ""
    cols = list(columns) if columns else list(rows[0].keys())
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=cols, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buf.getvalue()


def write_csv(path, rows: Iterable[Mapping[str, object]], columns: Sequence[str] | None = None) -> None:
    """Write dict rows to a CSV file."""
    text = rows_to_csv(rows, columns)
    with open(path, "w", encoding="utf-8", newline="") as fh:
        fh.write(text)


def format_kv(pairs: Mapping[str, object], title: str | None = None) -> str:
    """Render key/value pairs one per line (config echo in reports)."""
    lines = [title] if title else []
    width = max((len(k) for k in pairs), default=0)
    for key, value in pairs.items():
        lines.append(f"  {key.ljust(width)} : {value}")
    return "\n".join(lines)
