"""Consistency-vs-overhead study: what each mechanism buys and costs.

The paper argues qualitatively that stronger consistency costs more
control traffic (Section 5's discussion); this study makes the trade
quantitative across the full mechanism axis — baseline, view-sync,
proactive, reactive and the anti-entropy gossip layer — by running every
mechanism over the same seeds and reporting consistency benefit
(connectivity / strict-connectivity fractions) beside per-node, per-second
message costs: the Hello stream, the reactive scheme's sync floods, and
gossip's epidemic digest/delta/push traffic.

The result duck-types the CLI figure protocol (``figure_id`` / ``rows()``
/ ``format()`` with an empty ``series``), so ``repro overhead`` and
``repro all`` render and CSV it like any other figure.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.analysis.experiment import (
    ExperimentSpec,
    RunResult,
    _run_once_star,
    default_workers,
    run_once,
)
from repro.analysis.report import format_table
from repro.analysis.scales import QUICK, Scale

__all__ = ["STUDY_MECHANISMS", "OverheadStudyResult", "generate_overhead_study"]

#: Mechanism axis of the study, weakest consistency first.
STUDY_MECHANISMS: tuple[str, ...] = (
    "baseline",
    "view-sync",
    "proactive",
    "reactive",
    "gossip",
)


@dataclass(frozen=True)
class OverheadStudyResult:
    """Mechanism-by-mechanism consistency and control-cost table."""

    figure_id: str
    title: str
    scale: Scale
    mean_speed: float
    table: tuple[dict, ...]
    #: No curves — the CLI skips chart rendering on a falsy series.
    series: tuple = ()

    def rows(self) -> list[dict]:
        """Flat rows for tables and CSV."""
        return [dict(row) for row in self.table]

    def format(self) -> str:
        """ASCII rendering."""
        return format_table(
            self.rows(),
            title=f"{self.figure_id} — {self.title} (scale={self.scale.name})",
        )


def _fold(
    spec: ExperimentSpec, runs: list[RunResult]
) -> dict:
    """Average one mechanism's repetitions into a study row."""
    cfg = spec.config
    node_seconds = max(cfg.n_nodes * cfg.duration, 1e-9)
    k = len(runs)

    def rate(count_of) -> float:
        return sum(count_of(r.stats) for r in runs) / k / node_seconds

    hello = rate(lambda s: s.hello_messages)
    sync = rate(lambda s: s.sync_messages)
    gossip = rate(lambda s: s.gossip_messages)
    return {
        "mechanism": spec.mechanism,
        "connectivity": sum(r.connectivity_ratio for r in runs) / k,
        "strict": sum(float(r.strict_connected.mean()) for r in runs) / k,
        "hello_per_node_s": hello,
        "sync_per_node_s": sync,
        "gossip_per_node_s": gossip,
        "control_per_node_s": hello + sync + gossip,
    }


def generate_overhead_study(
    scale: Scale = QUICK,
    base_seed: int = 7000,
    workers: int | None = None,
    mean_speed: float = 20.0,
    buffer_width: float = 10.0,
) -> OverheadStudyResult:
    """Run every mechanism over the scale's repetitions and tabulate.

    All mechanisms share the same protocol (``rng``), buffer width, speed
    and seed set, so the rows differ *only* in the consistency mechanism —
    the message-rate columns are directly comparable.  Repetitions fan out
    over processes exactly like the other figures (``workers`` defaulting
    to ``REPRO_WORKERS``); results are bit-identical at any worker count
    because seeds, not schedulers, define each run.
    """
    specs = [
        ExperimentSpec(
            protocol="rng",
            mechanism=mechanism,
            buffer_width=buffer_width,
            mean_speed=mean_speed,
            config=scale.config(),
        )
        for mechanism in STUDY_MECHANISMS
    ]
    jobs = [
        (spec, base_seed + i, False)
        for spec in specs
        for i in range(scale.repetitions)
    ]
    workers = default_workers() if workers is None else max(1, int(workers))
    if workers > 1 and len(jobs) > 1:
        with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
            runs = list(pool.map(_run_once_star, jobs))
    else:
        runs = [run_once(spec, seed=seed) for spec, seed, _ in jobs]
    reps = scale.repetitions
    table = tuple(
        _fold(spec, runs[k * reps : (k + 1) * reps])
        for k, spec in enumerate(specs)
    )
    return OverheadStudyResult(
        figure_id="overhead",
        title="consistency benefit vs control-message overhead",
        scale=scale,
        mean_speed=mean_speed,
        table=table,
    )
