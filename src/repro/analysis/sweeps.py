"""Generic parameter sweeps over experiment specs.

The figure generators hard-code the paper's sweeps; :func:`grid_sweep` is
the general tool behind user-defined studies: give it a base spec and a
mapping of axes to value lists, and it runs the full cartesian product
with aggregated repetitions.  Axis names address either an
:class:`ExperimentSpec` field (``"buffer_width"``) or, with a ``config.``
prefix, a :class:`~repro.sim.config.ScenarioConfig` field
(``"config.hello_interval"``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields, replace

from repro.analysis.experiment import (
    AggregateResult,
    ExperimentSpec,
    run_repetitions,
)
from repro.sim.config import ScenarioConfig
from repro.util.errors import ConfigurationError

__all__ = ["SweepPoint", "grid_sweep", "sweep_rows"]

_SPEC_FIELDS = {f.name for f in fields(ExperimentSpec)}
_CONFIG_FIELDS = {f.name for f in fields(ScenarioConfig)}


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: the axis assignment and its aggregated result."""

    assignment: dict
    result: AggregateResult


def _apply(base: ExperimentSpec, assignment: dict) -> ExperimentSpec:
    spec_changes: dict = {}
    config_changes: dict = {}
    for key, value in assignment.items():
        if key.startswith("config."):
            name = key[len("config."):]
            if name not in _CONFIG_FIELDS:
                raise ConfigurationError(f"unknown config field {name!r}")
            config_changes[name] = value
        elif key in _SPEC_FIELDS:
            spec_changes[key] = value
        else:
            raise ConfigurationError(
                f"unknown sweep axis {key!r}; spec fields: {sorted(_SPEC_FIELDS)}, "
                "config fields use a 'config.' prefix"
            )
    spec = base.with_(**spec_changes) if spec_changes else base
    if config_changes:
        spec = spec.with_(config=replace(spec.config, **config_changes))
    return spec


def grid_sweep(
    base: ExperimentSpec,
    axes: dict[str, list],
    repetitions: int = 3,
    base_seed: int = 1000,
    workers: int | None = None,
) -> list[SweepPoint]:
    """Run the cartesian product of *axes* around *base*.

    Axis order in *axes* defines the nesting order of the product; the
    returned points iterate the last axis fastest.  Every point shares
    *base_seed*, so two points differing in one axis are paired runs.
    """
    if not axes:
        raise ConfigurationError("at least one sweep axis is required")
    names = list(axes)
    points: list[SweepPoint] = []
    for combo in itertools.product(*(axes[name] for name in names)):
        assignment = dict(zip(names, combo))
        spec = _apply(base, assignment)
        result = run_repetitions(
            spec, repetitions=repetitions, base_seed=base_seed, workers=workers
        )
        points.append(SweepPoint(assignment=assignment, result=result))
    return points


def sweep_rows(points: list[SweepPoint]) -> list[dict]:
    """Flatten sweep points to dict rows (axes + headline metrics)."""
    rows = []
    for point in points:
        row = dict(point.assignment)
        row.update(
            connectivity=point.result.connectivity.mean,
            connectivity_ci=point.result.connectivity.half_width,
            tx_range=point.result.transmission_range.mean,
            logical_degree=point.result.logical_degree.mean,
        )
        rows.append(row)
    return rows
