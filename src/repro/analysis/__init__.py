"""Experiment harness: specs, sweeps, table/figure regeneration."""

from repro.analysis.experiment import (
    AggregateResult,
    ExperimentSpec,
    RunResult,
    RunStats,
    build_manager,
    build_mobility,
    build_world,
    run_once,
    run_repetitions,
)
from repro.analysis.campaign import (
    CampaignResult,
    render_experiments_md,
    run_campaign,
)
from repro.analysis.comparison import PairedComparison, compare_specs
from repro.analysis.equivalence import EquivalencePoint, generate_equivalence_study
from repro.analysis.html_report import render_html_report, svg_chart, write_html_report
from repro.analysis.lifetime_study import LifetimeResult, run_lifetime_study
from repro.analysis.figures import (
    FigurePoint,
    FigureResult,
    FigureSeries,
    compare_figures,
    generate_fig6,
    generate_fig7,
    generate_fig8,
    generate_fig9,
    generate_fig10,
    minimal_tolerating_buffer,
)
from repro.analysis.plotting import ascii_chart, figure_chart
from repro.analysis.report import format_kv, format_table, rows_to_csv, write_csv
from repro.analysis.routing_study import UnicastStudyResult, run_unicast_study
from repro.analysis.scales import PAPER, QUICK, SMOKE, STANDARD, Scale
from repro.analysis.sweeps import SweepPoint, grid_sweep, sweep_rows
from repro.analysis.tables import Table1Result, generate_table1

__all__ = [
    "ExperimentSpec",
    "RunResult",
    "RunStats",
    "AggregateResult",
    "run_once",
    "run_repetitions",
    "build_manager",
    "build_mobility",
    "build_world",
    "Scale",
    "PAPER",
    "STANDARD",
    "QUICK",
    "SMOKE",
    "Table1Result",
    "generate_table1",
    "FigurePoint",
    "FigureSeries",
    "FigureResult",
    "generate_fig6",
    "generate_fig7",
    "generate_fig8",
    "generate_fig9",
    "generate_fig10",
    "minimal_tolerating_buffer",
    "compare_figures",
    "format_table",
    "format_kv",
    "rows_to_csv",
    "write_csv",
    "ascii_chart",
    "figure_chart",
    "CampaignResult",
    "run_campaign",
    "render_experiments_md",
    "SweepPoint",
    "grid_sweep",
    "sweep_rows",
    "EquivalencePoint",
    "generate_equivalence_study",
    "UnicastStudyResult",
    "run_unicast_study",
    "LifetimeResult",
    "run_lifetime_study",
    "render_html_report",
    "write_html_report",
    "svg_chart",
    "PairedComparison",
    "compare_specs",
]
