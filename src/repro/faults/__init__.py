"""Deterministic fault injection and differential fuzzing.

The paper's mechanisms are exactly the machinery that must survive
*imperfect* conditions — lost Hellos, crashed neighbors, skewed clocks,
stale or reordered control traffic, noisy GPS fixes.  This package makes
those conditions first-class, reproducible inputs:

- :mod:`repro.faults.schedule` — composable, seed-reproducible fault
  events assembled into a :class:`FaultSchedule` (JSON-serializable, so
  failing cases become permanent repro files);
- :mod:`repro.faults.inject` — the :class:`FaultInjector` runtime that
  worlds consult through narrow seams (zero-cost when absent);
- :mod:`repro.faults.oracles` — invariant oracles layered on
  :func:`repro.core.audit.audit_world` plus the paper's theorem
  cross-checks;
- :mod:`repro.faults.fuzz` — the differential fuzzer behind the
  ``repro fuzz`` CLI: randomized scenario x mechanism x protocol x fault
  runs, failure shrinking, and the ``tests/corpus/`` replay format.
"""

from repro.faults.inject import FaultInjector
from repro.faults.schedule import (
    ClockSkew,
    DeliveryDelay,
    FaultSchedule,
    HelloIntervalScale,
    HelloLossBurst,
    NodeOutage,
    PositionNoise,
)

__all__ = [
    "FaultSchedule",
    "FaultInjector",
    "HelloLossBurst",
    "NodeOutage",
    "ClockSkew",
    "HelloIntervalScale",
    "DeliveryDelay",
    "PositionNoise",
]
