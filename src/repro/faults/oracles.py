"""Theorem-derived runtime oracles for the differential fuzzer.

Each oracle turns one of the paper's guarantees into a machine-checkable
predicate over a live :class:`~repro.sim.world.NetworkWorld`, *sound under
fault injection*: every slack term below is a worst-case bound derived
from the armed :class:`~repro.faults.schedule.FaultSchedule` (clock-skew
magnitudes, position-noise amplitudes, Hello-interval stretch), so a
reported finding is a genuine broken guarantee, never an artifact of the
injected disturbance itself.

The oracles, and what they correspond to:

- :func:`audit_oracle` — the structural invariants of
  :func:`repro.core.audit.audit_world` (always applicable).
- :func:`freshness_oracle` — expiry-filtered mechanisms must never base a
  decision exclusively on Hellos older than the expiry window (this is
  the detector that catches :class:`~repro.faults.fuzz.BrokenViewSync`).
- :func:`theorem5_oracle` — with the buffer zone sized by Theorem 5
  (``l = 2 Δ'' v``), every logical link's current true length is covered
  by the selecting endpoint's extended range.  Under a stochastic
  propagation model the oracle's slack widens by the model's staleness
  allowance (:func:`theorem5_slack`): failed reception draws can age a
  view by up to one extra Hello generation without any fault injected.
- :func:`static_connectivity_oracle` — in a static scenario, once every
  fault's influence has drained, a connected undisturbed topology implies
  a connected logical topology *and* effective (deliverable) connectivity.
  Unit-disk only: under shadowing or probabilistic reception the geometric
  disk no longer promises delivery, so the implication does not hold.

:func:`check_instant` composes the applicable subset at one sampling
instant and is the single entry point the fuzz runner calls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.audit import audit_world
from repro.faults.schedule import ClockSkew, DeliveryDelay, HelloIntervalScale
from repro.metrics.connectivity import (
    logical_topology_connected,
    original_topology_connected,
    strictly_connected,
)
from repro.sim.world import NetworkWorld

__all__ = [
    "OracleFinding",
    "FRESHNESS_MECHANISMS",
    "audit_oracle",
    "freshness_oracle",
    "theorem5_slack",
    "theorem5_oracle",
    "static_connectivity_oracle",
    "check_instant",
]

#: Mechanisms whose ``decide`` filters the view through the expiry window,
#: making the freshness oracle applicable.  Versioned mechanisms
#: (proactive/reactive) deliberately read expired Hellos, so the oracle
#: would false-positive on them.  Gossip qualifies: epidemically merged
#: entries land in the same expiry-filtered latest view.
FRESHNESS_MECHANISMS = frozenset(
    {"baseline", "view-sync", "weak", "broken-view-sync", "gossip"}
)


@dataclass(frozen=True)
class OracleFinding:
    """One oracle failure at one instant."""

    oracle: str
    time: float
    detail: str

    def __str__(self) -> str:
        return f"[{self.oracle}] t={self.time:.2f}s: {self.detail}"


def _skew_bound(world: NetworkWorld) -> float:
    """Worst-case pairwise clock disagreement, configured plus injected."""
    extra = 0.0
    if world.fault_injector is not None:
        extra = sum(
            abs(e.offset)
            for e in world.fault_injector.schedule
            if isinstance(e, ClockSkew)
        )
    return world.config.max_clock_skew + extra


def _interval_stretch(world: NetworkWorld) -> float:
    """Largest factor by which any node's Hello interval can be stretched."""
    stretch = 1.0
    if world.fault_injector is not None:
        for e in world.fault_injector.schedule:
            if isinstance(e, HelloIntervalScale) and e.factor > 1.0:
                stretch *= e.factor
    return stretch


def _noise_bound(world: NetworkWorld) -> float:
    inj = world.fault_injector
    return 0.0 if inj is None else inj.position_noise_bound()


def _gossip_staleness(world: NetworkWorld) -> float:
    """Extra view lag the gossip mechanism may legitimately carry.

    Anti-entropy views converge in ``rounds_to_converge × interval``
    (:meth:`~repro.core.consistency.GossipConsistency.staleness_bound`);
    until then a node may decide from a relayed Hello that old.  Zero for
    every other mechanism, so their slack values are unchanged.
    """
    mech = world.manager.mechanism
    if mech.name != "gossip":
        return 0.0
    return mech.staleness_bound(world.config.n_nodes)


def audit_oracle(world: NetworkWorld) -> list[OracleFinding]:
    """Structural invariants (:func:`~repro.core.audit.audit_world`)."""
    now = world.engine.now
    return [
        OracleFinding("audit", now, str(v)) for v in audit_world(world)
    ]


def freshness_oracle(world: NetworkWorld) -> list[OracleFinding]:
    """No expiry-filtered decision may rest on exclusively stale Hellos.

    For every standing decision of an expiry-filtered mechanism, each
    selected logical neighbor must have *some* retained Hello no older
    (relative to the decision instant) than the expiry window.  A correct
    mechanism satisfies this by construction — the neighbor was live when
    selected, and later Hellos can only be fresher — while a mechanism
    that skips the expiry filter keeps selecting silenced neighbors and
    trips it as soon as a fault (outage, loss burst) makes one stale.
    """
    mech = world.manager.mechanism.name
    if mech not in FRESHNESS_MECHANISMS:
        return []
    cfg = world.config
    now = world.engine.now
    # Stamps may disagree by the clock-skew bound at each end, and a Hello
    # is only observable one propagation delay after its stamp.
    tol = cfg.propagation_delay + 2.0 * _skew_bound(world) + 1e-6
    findings = []
    for node in world.nodes:
        decision = node.decision
        if decision is None:
            continue
        for v in decision.logical_neighbors:
            history = node.table.history_of(v)
            if not history:
                continue  # flagged as ghost-neighbor by the audit oracle
            # Negative ages (Hellos newer than the decision) make the min
            # negative — freshness is then unprovable either way, so pass.
            age = min(decision.decided_at - h.sent_at for h in history)
            if age > cfg.hello_expiry + tol:
                findings.append(
                    OracleFinding(
                        "freshness", now,
                        f"node {node.node_id} decided at "
                        f"t={decision.decided_at:.2f}s with neighbor {v} "
                        f"whose freshest retained Hello was {age:.2f}s old "
                        f"(expiry {cfg.hello_expiry:g}s)",
                    )
                )
    return findings


def theorem5_slack(world: NetworkWorld) -> float:
    """Worst-case allowance the Theorem-5 coverage check must grant.

    Sums every bounded disturbance that can legitimately widen the gap
    between a logical link's current length and the selecting endpoint's
    extended range: injected position noise, clock skew (configured plus
    injected) times speed, propagation delay times speed, Hello-interval
    stretch beyond nominal, and — when a *stochastic* propagation model
    is armed — the model's staleness allowance
    (:meth:`~repro.sim.propagation.PropagationModel.staleness_allowance`):
    a failed reception draw ages the view by up to one extra Hello
    generation of motion at both endpoints, exactly like a one-generation
    interval stretch.  Deterministic models (unit disk, log-distance)
    contribute zero, so the historical slack value is unchanged for them.
    """
    cfg = world.config
    v_max = world.mobility.max_speed()
    return (
        2.0 * _noise_bound(world)
        + 2.0 * v_max * (2.0 * _skew_bound(world) + cfg.propagation_delay)
        # Interval stretch beyond nominal ages the decision past what the
        # buffer was sized for; charge the excess drift to slack.
        + 2.0 * v_max * (_interval_stretch(world) - 1.0) * cfg.max_hello_interval
        # Stochastic reception: each missed draw defers the view refresh
        # by one Hello generation at each endpoint.
        + 2.0 * v_max * world.propagation.staleness_allowance(cfg)
        # Epidemic dissemination: gossip views may lag behind direct
        # delivery by up to rounds_to_converge × gossip_interval.
        + 2.0 * v_max * _gossip_staleness(world)
        + 1e-6
    )


def theorem5_oracle(world: NetworkWorld) -> list[OracleFinding]:
    """Theorem 5: a properly sized buffer keeps every logical link covered.

    Only sound when the run's buffer width is at least
    ``buffer_width(2 v_max, expiry + max_interval)`` — the fuzz generator
    flags such cases with ``theorem5=True``.  Nodes whose decision cadence
    a fault disrupted (an outage overlapping the age window stalls
    re-decisions) are skipped; injected noise, skew, interval stretch and
    stochastic-reception staleness widen the allowance
    (:func:`theorem5_slack`) instead.
    """
    cfg = world.config
    now = world.engine.now
    v_max = world.mobility.max_speed()
    if v_max <= 0.0:
        return []
    inj = world.fault_injector
    # Worst staleness a standing decision may legitimately carry.
    age_window = (
        cfg.hello_expiry
        + _interval_stretch(world) * cfg.max_hello_interval
        + world.propagation.staleness_allowance(cfg)
        + _gossip_staleness(world)
    )
    slack = theorem5_slack(world)
    delay_sum = 0.0
    if inj is not None:
        delay_sum = sum(
            e.delay for e in inj.schedule if isinstance(e, DeliveryDelay)
        )
    snap = world.snapshot()
    findings = []
    for node in world.nodes:
        u = node.node_id
        decision = node.decision
        if decision is None or not decision.logical_neighbors:
            continue
        # An outage stalls u's Hello emission and therefore its
        # re-decisions; in-flight deliveries delayed into the window have
        # the same effect on the view.  Skip u until the disturbance ages
        # out of the decision window.
        if inj is not None and inj.node_disturbed_since(
            u, now - age_window - delay_sum, now
        ):
            continue
        for v in decision.logical_neighbors:
            d_uv = snap.pair_distance(u, v)
            gap = d_uv - (snap.extended_ranges[u] + slack)
            if gap > 0.0:
                findings.append(
                    OracleFinding(
                        "theorem5", now,
                        f"logical link {u}->{v} is {d_uv:.1f} m "
                        f"long but {u}'s extended range is only "
                        f"{snap.extended_ranges[u]:.1f} m "
                        f"(uncovered by {gap:.1f} m)",
                    )
                )
    return findings


def static_connectivity_oracle(world: NetworkWorld) -> list[OracleFinding]:
    """Static network, faults drained, G connected ⇒ connected topology.

    In a static scenario every Hello advertises the true (never stale)
    position, so once the last fault's influence has flushed through the
    expiry window plus two Hello generations, the mechanisms' consistency
    guarantees apply unconditionally: the logical topology derived from a
    connected undisturbed graph must be connected, and the in-force
    ranges must actually deliver it (strict connectivity).

    Only sound under the unit disk: with log-distance shadowing an
    adverse pair factor shrinks a link below its geometric length (a node
    can select a neighbour whose Hello barely arrived, with no buffer to
    spare), and probabilistic reception denies delivery outright — strict
    connectivity can then genuinely fail with nothing broken, so the
    oracle stands down for every non-unit-disk model.
    """
    cfg = world.config
    now = world.engine.now
    if not world.propagation.is_unit_disk:
        return []
    if world.mobility.max_speed() > 0.0:
        return []
    inj = world.fault_injector
    settle = cfg.hello_expiry + 2.0 * cfg.max_hello_interval
    if inj is not None:
        # Delayed deliveries keep acting past their event window; ClockSkew
        # counts as always-active in ``any_active`` and is conservatively
        # treated as a standing disturbance.
        settle += sum(
            e.delay for e in inj.schedule if isinstance(e, DeliveryDelay)
        )
        if inj.schedule.any_active(now - settle, now):
            return []
    if now < cfg.warmup + settle:
        return []  # tables may still be filling
    snap = world.snapshot()
    if not original_topology_connected(snap):
        return []  # theorem precondition absent; nothing to assert
    findings = []
    if not logical_topology_connected(snap):
        findings.append(
            OracleFinding(
                "static-logical-connectivity", now,
                "undisturbed topology is connected but the logical "
                "topology is partitioned",
            )
        )
    elif not strictly_connected(snap, world.manager.physical_neighbor_mode):
        findings.append(
            OracleFinding(
                "static-effective-connectivity", now,
                "logical topology is connected but the in-force ranges "
                "do not deliver it bidirectionally",
            )
        )
    return findings


def check_instant(world: NetworkWorld, theorem5: bool = False) -> list[OracleFinding]:
    """Run every applicable oracle at the current instant."""
    findings = audit_oracle(world)
    findings += freshness_oracle(world)
    if theorem5:
        findings += theorem5_oracle(world)
    findings += static_connectivity_oracle(world)
    return findings
