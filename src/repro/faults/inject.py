"""The fault-injection runtime a world consults through narrow seams.

:class:`FaultInjector` turns a descriptive
:class:`~repro.faults.schedule.FaultSchedule` into the handful of O(events)
queries the simulator's seams ask at run time (is this node down?  does
this delivery drop?  how late does it arrive?).  Schedules are small —
fuzzing converges on single-digit event counts — so linear scans beat any
index, and every query is deterministic given the world's named RNG
streams.

The injector also keeps the fault-accounting counters that
:func:`repro.analysis.experiment.run_once` carries as ``fault_*`` fields
on ``RunResult.stats``, so a run's injected disturbance is observable
next to the channel's own counters.
"""

from __future__ import annotations

import numpy as np

from repro.faults.schedule import (
    ClockSkew,
    DeliveryDelay,
    FaultSchedule,
    HelloIntervalScale,
    HelloLossBurst,
    NodeOutage,
    PositionNoise,
)

__all__ = ["FaultInjector"]


class FaultInjector:
    """Runtime fault oracle for one simulation run.

    Parameters
    ----------
    schedule:
        The fault events to realise.
    rng:
        Named random stream (``seeds.rng("faults")``) for the schedule's
        stochastic draws — partial loss bursts and position noise.  Runs
        with equal ``(seed, schedule)`` replay bit-identically because
        draws happen in event-engine order, which is itself deterministic.
    telemetry:
        Armed telemetry collector or None.  When armed, every counted
        disturbance also lands in the structured event log as a ``fault``
        event whose ``action`` field names the seam that fired; disarmed,
        each seam pays one ``None`` check (the established pattern).
    """

    __slots__ = (
        "schedule",
        "_rng",
        "_loss",
        "_outages",
        "_skews",
        "_interval_scales",
        "_delays",
        "_noise",
        "stats",
        "_telemetry",
    )

    def __init__(
        self,
        schedule: FaultSchedule,
        rng: np.random.Generator,
        telemetry=None,
    ) -> None:
        self.schedule = schedule
        self._rng = rng
        if telemetry is not None and not getattr(telemetry, "enabled", True):
            telemetry = None
        self._telemetry = telemetry
        self._loss = [e for e in schedule if isinstance(e, HelloLossBurst)]
        self._outages = [e for e in schedule if isinstance(e, NodeOutage)]
        self._skews = [e for e in schedule if isinstance(e, ClockSkew)]
        self._interval_scales = [
            e for e in schedule if isinstance(e, HelloIntervalScale)
        ]
        self._delays = [e for e in schedule if isinstance(e, DeliveryDelay)]
        self._noise = [e for e in schedule if isinstance(e, PositionNoise)]
        self.stats: dict[str, int] = {
            "hello_drops": 0,
            "suppressed_sends": 0,
            "blocked_receptions": 0,
            "stale_discards": 0,
            "delayed_deliveries": 0,
            "noisy_positions": 0,
        }

    # ------------------------------------------------------------------ #
    # accounting seam

    def note(self, action: str, t: float, node: int | None = None, count: int = 1, **data) -> None:
        """Count one disturbance under *action*; trace it when armed.

        This is the single accounting path for every injector counter —
        the world's outage seams call it too — so the ``fault_*`` stats
        and the telemetry ``fault`` events can never disagree.
        """
        self.stats[action] += count
        tel = self._telemetry
        if tel is not None:
            tel.count("fault_events", count, action=action)
            tel.event("fault", t=t, node=node, action=action, count=count, **data)

    # ------------------------------------------------------------------ #
    # outage queries

    def node_down(self, node: int, t: float) -> bool:
        """True while *node* is inside any of its outage windows."""
        for event in self._outages:
            if event.node == node and event.active(t):
                return True
        return False

    def node_disturbed_since(self, node: int, t0: float, t1: float) -> bool:
        """True if *node* had any outage overlapping ``[t0, t1]``."""
        for event in self._outages:
            if event.node == node and event.start <= t1 and event.end > t0:
                return True
        return False

    # ------------------------------------------------------------------ #
    # delivery seams (called by the world's Hello emission)

    def filter_hello_receivers(
        self, now: float, sender: int, receivers: np.ndarray
    ) -> np.ndarray:
        """Drop receivers hit by an active loss burst; count the drops.

        This is the :attr:`~repro.sim.radio.IdealChannel.fault_filter`
        seam — it composes with (runs after) the channel's own i.i.d.
        ``hello_loss_rate`` model.
        """
        if receivers.size == 0:
            return receivers
        keep = np.ones(receivers.size, dtype=bool)
        for event in self._loss:
            if not event.active(now):
                continue
            if event.senders is not None and sender not in event.senders:
                continue
            if event.receivers is None:
                matched = keep.copy()
            else:
                matched = keep & np.isin(receivers, event.receivers)
            if not matched.any():
                continue
            if event.probability >= 1.0:
                keep &= ~matched
            else:
                # One draw per still-alive matched receiver, in receiver
                # order — deterministic because the emission order is.
                drop = matched & (
                    self._rng.random(receivers.size) < event.probability
                )
                keep &= ~drop
        dropped = int(receivers.size - keep.sum())
        if dropped:
            self.note("hello_drops", now, node=sender, count=dropped)
        return receivers[keep]

    def delivery_delay(self, now: float, sender: int, receiver: int) -> float:
        """Extra latency for one directed Hello delivery (0.0 = on time)."""
        extra = 0.0
        for event in self._delays:
            if event.active(now) and event.matches(sender, receiver):
                extra += event.delay
        if extra > 0.0:
            self.note("delayed_deliveries", now, node=receiver, sender=sender)
        return extra

    # ------------------------------------------------------------------ #
    # sender-side seams

    def advertised_position(
        self, node: int, t: float, position: np.ndarray
    ) -> np.ndarray:
        """The position *node* advertises at *t* (GPS noise applied).

        Noise from overlapping events accumulates; each event's vector is
        uniform on the disk of its amplitude, so
        :meth:`position_noise_bound` is a hard per-sample bound.
        """
        out = position
        for event in self._noise:
            if event.amplitude > 0.0 and event.active(t) and event.matches(node):
                angle = self._rng.uniform(0.0, 2.0 * np.pi)
                radius = event.amplitude * np.sqrt(self._rng.uniform())
                out = out + radius * np.array([np.cos(angle), np.sin(angle)])
                self.note("noisy_positions", t, node=node)
        return out

    def position_noise_bound(self) -> float:
        """Worst-case advertised-position error any single Hello can carry."""
        return float(sum(e.amplitude for e in self._noise))

    def interval_scale(self, node: int, t: float) -> float:
        """Combined Hello-interval scale for *node* at *t* (1.0 = nominal)."""
        scale = 1.0
        for event in self._interval_scales:
            if event.node == node and event.active(t):
                scale *= event.factor
        return scale

    def clock_offset_shift(self, node: int) -> float:
        """Static extra clock offset for *node* (applied at world build)."""
        return float(
            sum(e.offset for e in self._skews if e.node == node)
        )

    # ------------------------------------------------------------------ #
    # accounting

    def as_dict(self) -> dict[str, int]:
        """Counter snapshot, ``fault_``-prefixed for stats merging."""
        return {f"fault_{key}": value for key, value in self.stats.items()}
