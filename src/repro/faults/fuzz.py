"""Differential fuzzer over scenario × mechanism × fault schedules.

The fuzzer draws random small scenarios (every consistency mechanism and
a protocol sample), arms each with a random :class:`FaultSchedule`, runs
the simulation, and cross-checks the paper's guarantees at every sampling
instant through :mod:`repro.faults.oracles`.  A failing case is shrunk —
greedy delta-debugging over the schedule's events — to a minimal repro
and serialized as a self-contained JSON :class:`FuzzCase` that
``tests/test_fuzz_corpus.py`` replays verbatim.

Everything is deterministic: case *i* of ``fuzz(seed=s)`` is a pure
function of ``(s, i)``, and replaying a serialized case reproduces the
original run bit for bit (the schedule is descriptive; all stochastic
fault realisations come from the world's named seed streams).

:class:`BrokenViewSync` is the built-in mutation used to validate the
pipeline end to end: a view-synchronization variant that skips the expiry
filter, which the freshness oracle catches as soon as a fault silences a
selected neighbor for longer than the expiry window.

Entry points: ``repro fuzz`` (CLI) and :func:`fuzz` (programmatic).
"""

from __future__ import annotations

import json
from collections.abc import Callable, Sequence
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.orchestrator.store import RunStore

import numpy as np

from repro.analysis.experiment import ExperimentSpec, build_mobility
from repro.core.audit import audit_world
from repro.core.buffer_zone import BufferZonePolicy, buffer_width
from repro.core.consistency import (
    ViewSynchronization,
    available_mechanisms,
    make_mechanism,
)
from repro.core.manager import MobilitySensitiveTopologyControl
from repro.core.views import LocalView
from repro.faults.oracles import OracleFinding, check_instant
from repro.faults.schedule import (
    ClockSkew,
    DeliveryDelay,
    FaultSchedule,
    HelloIntervalScale,
    HelloLossBurst,
    NodeOutage,
    PositionNoise,
)
from repro.mobility.base import Area
from repro.protocols.base import make_protocol
from repro.sim.config import ScenarioConfig
from repro.sim.world import NetworkWorld
from repro.util.errors import ConfigurationError
from repro.util.randomness import SeedSequenceFactory

__all__ = [
    "MECHANISMS",
    "PROTOCOLS",
    "PROPAGATIONS",
    "BrokenViewSync",
    "FuzzCase",
    "CaseResult",
    "FuzzReport",
    "build_fuzz_world",
    "random_case",
    "run_case",
    "shrink_case",
    "fuzz",
    "save_case",
    "load_case",
]

#: Shipped mechanisms the fuzzer samples by default — derived from the
#: consistency registry so a newly registered mechanism joins the axis
#: automatically instead of drifting out of sync with the CLI.
MECHANISMS = available_mechanisms()
#: Protocol sample — cheap, structurally diverse (sparsifier, tree, cone).
PROTOCOLS = ("rng", "mst", "spt2")
#: Propagation-model sample; the unit disk is over-weighted because it is
#: the only model arming the static-connectivity oracle (the strictest).
PROPAGATIONS = ("unit-disk", "unit-disk", "log-distance", "sinr")

_CASE_FORMAT = "repro-fuzz-case/1"


class BrokenViewSync(ViewSynchronization):
    """Deliberately broken view synchronization: no expiry filtering.

    Builds its decision view from every retained neighbor, however stale —
    the classic "forgot the liveness check" bug.  Fault-free it behaves
    like the real mechanism (neighbors refresh every interval), but any
    fault that silences a selected neighbor beyond the expiry window makes
    it keep a dead selection, which the freshness oracle flags.  The
    fingerprint is None so the decision cache can never mask the bug.
    """

    name = "broken-view-sync"

    def decide(self, protocol, table, now, current_hello, version=None):
        own = table.last_advertised
        if own is None:
            own = current_hello
        neighbors = {
            nid: table.history_of(nid)[-1] for nid in table.known_neighbors()
        }
        view = LocalView(
            owner=table.owner,
            own_hello=own,
            neighbor_hellos=neighbors,
            normal_range=table.normal_range,
            sampled_at=now,
        )
        return protocol.select(view)

    def decision_fingerprint(self, table, now, current_hello, version=None):
        return None


# --------------------------------------------------------------------- #
# case description + JSON form


@dataclass(frozen=True)
class FuzzCase:
    """One self-contained fuzz input: scenario, schedule, seed.

    ``theorem5`` records that the buffer width was sized by Theorem 5
    (``l = 2 Δ'' v``, uncapped), arming the link-coverage oracle.
    """

    spec: ExperimentSpec
    schedule: FaultSchedule
    seed: int
    theorem5: bool = False
    note: str = ""

    def describe(self) -> str:
        """One-line label for progress output."""
        return (
            f"{self.spec.describe()} seed={self.seed} "
            f"events={len(self.schedule)}"
        )

    def as_dict(self) -> dict:
        """Plain-JSON form (the corpus file format)."""
        return {
            "format": _CASE_FORMAT,
            "note": self.note,
            "seed": self.seed,
            "theorem5": self.theorem5,
            "spec": self.spec.as_dict(),
            "schedule": self.schedule.as_dict(),
        }

    @staticmethod
    def from_dict(data: dict) -> "FuzzCase":
        """Rebuild a case from :meth:`as_dict` output."""
        fmt = data.get("format")
        if fmt != _CASE_FORMAT:
            raise ConfigurationError(
                f"unsupported fuzz-case format {fmt!r} (expected {_CASE_FORMAT!r})"
            )
        return FuzzCase(
            spec=ExperimentSpec.from_dict(data["spec"]),
            schedule=FaultSchedule.from_dict(data["schedule"]),
            seed=int(data["seed"]),
            theorem5=bool(data.get("theorem5", False)),
            note=str(data.get("note", "")),
        )

    def to_json(self) -> str:
        """JSON text (stable field order, human-diffable)."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def canonical_json(self) -> str:
        """Compact canonical JSON — the orchestrator unit-hash substrate."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @staticmethod
    def from_json(text: str) -> "FuzzCase":
        """Parse :meth:`to_json` output."""
        return FuzzCase.from_dict(json.loads(text))


def save_case(case: FuzzCase, path: str | Path, findings: Sequence[str] = ()) -> Path:
    """Write *case* (plus the findings that motivated it) as a JSON repro."""
    path = Path(path)
    payload = case.as_dict()
    if findings:
        payload["findings"] = list(findings)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_case(path: str | Path) -> FuzzCase:
    """Read a JSON repro written by :func:`save_case`."""
    data = json.loads(Path(path).read_text())
    data.pop("findings", None)
    return FuzzCase.from_dict(data)


# --------------------------------------------------------------------- #
# world construction + execution


def build_fuzz_world(
    case: FuzzCase, decision_cache: bool | None = None
) -> NetworkWorld:
    """Wire the world a :class:`FuzzCase` describes.

    Mirrors :func:`repro.analysis.experiment.build_world` but understands
    the :class:`BrokenViewSync` mutation and, for ``theorem5`` cases,
    removes the extended-range cap (the theorem's guarantee is about the
    uncapped width, matching the Theorem-5 integration test).
    """
    spec = case.spec
    seeds = SeedSequenceFactory(case.seed)
    mobility = build_mobility(spec, seeds.rng("mobility"))
    protocol = make_protocol(spec.protocol, **spec.protocol_kwargs)
    if spec.mechanism == BrokenViewSync.name:
        mechanism = BrokenViewSync()
    else:
        mechanism = make_mechanism(spec.mechanism, **spec.mechanism_kwargs)
    cap = None if case.theorem5 else spec.config.normal_range
    manager = MobilitySensitiveTopologyControl(
        protocol,
        mechanism=mechanism,
        buffer_policy=BufferZonePolicy(width=spec.buffer_width, cap=cap),
        physical_neighbor_mode=spec.physical_neighbor_mode,
        decision_cache=decision_cache,
    )
    return NetworkWorld(
        spec.config, mobility, manager, seed=case.seed, faults=case.schedule
    )


def _sample_times(cfg: ScenarioConfig) -> np.ndarray:
    return np.arange(cfg.warmup, cfg.duration + 1e-9, 1.0 / cfg.sample_rate)


def _decision_state(world: NetworkWorld) -> tuple:
    return tuple(
        (
            node.node_id,
            None
            if node.decision is None
            else (
                node.decision.logical_neighbors,
                node.decision.actual_range,
                node.decision.extended_range,
            ),
        )
        for node in world.nodes
    )


@dataclass(frozen=True)
class CaseResult:
    """Outcome of executing one fuzz case."""

    case: FuzzCase
    findings: tuple[str, ...]
    fault_stats: dict

    @property
    def failed(self) -> bool:
        """True if any oracle reported a finding."""
        return bool(self.findings)


def run_case(
    case: FuzzCase,
    deep: bool = False,
    differential: bool = False,
    stop_at_first: bool = True,
    max_findings: int = 20,
) -> CaseResult:
    """Execute one case and collect every oracle finding.

    Parameters
    ----------
    deep:
        Audit the world after *every processed event* (via the engine's
        event hook) rather than only at sampling instants — slower but
        catches transient violations between samples.
    differential:
        Also run a decision-cache-disabled twin of the same case and
        require identical standing decisions at every sampling instant
        (the cache must be a pure memo even under faults).
    stop_at_first:
        Return at the first violating instant (the shrinker's fast path).
    """
    world = build_fuzz_world(case)
    twin = build_fuzz_world(case, decision_cache=False) if differential else None
    findings: list[OracleFinding] = []
    if deep:
        last_audited = [float("nan")]

        def _deep_hook(now: float) -> None:
            if now == last_audited[0] or len(findings) >= max_findings:
                return
            last_audited[0] = now
            for v in audit_world(world):
                findings.append(OracleFinding("audit-deep", now, str(v)))

        world.engine.set_event_hook(_deep_hook)
    for t in _sample_times(case.spec.config):
        world.run_until(float(t))
        findings += check_instant(world, theorem5=case.theorem5)
        if twin is not None:
            twin.run_until(float(t))
            if _decision_state(world) != _decision_state(twin):
                findings.append(
                    OracleFinding(
                        "cache-differential", float(t),
                        "standing decisions differ between the cached and "
                        "uncached runs of the same seed",
                    )
                )
        if findings and stop_at_first:
            break
    return CaseResult(
        case=case,
        findings=tuple(str(f) for f in findings[:max_findings]),
        fault_stats=world.fault_stats(),
    )


# --------------------------------------------------------------------- #
# generation


def _maybe_subset(
    rng: np.random.Generator, n_nodes: int
) -> tuple[int, ...] | None:
    if rng.random() < 0.5:
        return None
    size = int(rng.integers(1, 4))
    return tuple(
        int(x) for x in rng.choice(n_nodes, size=min(size, n_nodes), replace=False)
    )


def _random_event(rng: np.random.Generator, cfg: ScenarioConfig):
    start = float(rng.uniform(0.5, cfg.duration - 1.0))
    end = start + float(rng.uniform(0.5, 2.5))
    node = int(rng.integers(cfg.n_nodes))
    kind = int(rng.integers(6))
    if kind == 0:
        return HelloLossBurst(
            start=start,
            end=end,
            probability=float(rng.choice([1.0, 1.0, 0.5, 0.8])),
            senders=_maybe_subset(rng, cfg.n_nodes),
            receivers=_maybe_subset(rng, cfg.n_nodes),
        )
    if kind == 1:
        return NodeOutage(start=start, end=end, node=node)
    if kind == 2:
        # Positive offsets only: a negative whole-run offset would stamp
        # the first Hellos before t = 0.
        return ClockSkew(node=node, offset=float(rng.uniform(0.05, 0.35)))
    if kind == 3:
        return HelloIntervalScale(
            start=start, end=end, node=node,
            factor=float(rng.choice([0.5, 1.5, 2.0])),
        )
    if kind == 4:
        return DeliveryDelay(
            start=start, end=end,
            delay=float(rng.uniform(0.05, 0.4)),
            senders=_maybe_subset(rng, cfg.n_nodes),
            receivers=_maybe_subset(rng, cfg.n_nodes),
        )
    return PositionNoise(
        start=start, end=end,
        amplitude=float(rng.uniform(1.0, 10.0)),
        nodes=_maybe_subset(rng, cfg.n_nodes),
    )


def random_schedule(rng: np.random.Generator, cfg: ScenarioConfig) -> FaultSchedule:
    """Draw 0-4 random fault events sized to the scenario."""
    count = int(rng.integers(0, 5))
    return FaultSchedule(
        events=tuple(_random_event(rng, cfg) for _ in range(count))
    )


def random_case(
    rng: np.random.Generator,
    index: int = 0,
    mechanisms: Sequence[str] = MECHANISMS,
    protocols: Sequence[str] = PROTOCOLS,
    propagations: Sequence[str] = PROPAGATIONS,
) -> FuzzCase:
    """Draw one random scenario + schedule (pure function of *rng* state).

    Scenarios stay small (10-18 nodes at the paper's density, 6 s runs)
    so a fuzz campaign of dozens of cases finishes in tens of seconds;
    static scenarios are over-weighted because they arm the strictest
    oracle (unconditional connectivity).  The propagation axis samples
    *propagations* (log-distance draws its shadowing depth too); the
    oracles adapt automatically — static connectivity stands down off
    the unit disk, Theorem-5 widens its slack for stochastic reception.
    """
    n_nodes = int(rng.integers(10, 19))
    side = float(np.sqrt(n_nodes * 8100.0) * rng.uniform(0.85, 1.15))
    speed = float(rng.choice([0.0, 0.0, 5.0, 10.0, 20.0]))
    propagation = str(rng.choice(list(propagations)))
    propagation_params: dict = {}
    if propagation == "log-distance":
        propagation_params = {"sigma_db": float(rng.choice([2.0, 4.0, 6.0]))}
    cfg = ScenarioConfig(
        n_nodes=n_nodes,
        area=Area(side, side),
        duration=6.0,
        warmup=2.0,
        sample_rate=2.0,
        propagation=propagation,
        propagation_params=propagation_params,
    )
    theorem5 = False
    buffer = float(rng.choice([0.0, 10.0, 30.0]))
    if speed > 0.0 and rng.random() < 0.6:
        # Theorem-5 sizing: worst info age is expiry + one full interval,
        # worst relative speed twice the waypoint draw ceiling (2 x mean).
        theorem5 = True
        buffer = buffer_width(
            max_speed=2.0 * speed,
            max_delay=cfg.hello_expiry + cfg.max_hello_interval,
        )
    spec = ExperimentSpec(
        protocol=str(rng.choice(list(protocols))),
        mechanism=str(rng.choice(list(mechanisms))),
        buffer_width=buffer,
        mean_speed=speed,
        config=cfg,
    )
    return FuzzCase(
        spec=spec,
        schedule=random_schedule(rng, cfg),
        seed=int(rng.integers(2**31)),
        theorem5=theorem5,
        note=f"generated case {index}",
    )


# --------------------------------------------------------------------- #
# shrinking


def shrink_case(
    case: FuzzCase,
    deep: bool = False,
    differential: bool = False,
    max_runs: int = 200,
) -> FuzzCase:
    """Greedy delta-debugging: drop fault events while the case still fails.

    Repeatedly removes any single event whose removal preserves the
    failure, to a fixpoint — the classic ddmin core, which suffices at
    the single-digit schedule sizes the generator produces.  The returned
    case fails for the same reason with a locally minimal schedule.
    """

    def fails(candidate: FuzzCase) -> bool:
        return run_case(
            candidate, deep=deep, differential=differential, stop_at_first=True
        ).failed

    current = case
    budget = max_runs
    changed = True
    while changed and budget > 0:
        changed = False
        for i in range(len(current.schedule)):
            candidate = replace(current, schedule=current.schedule.without(i))
            budget -= 1
            if fails(candidate):
                current = candidate
                changed = True
                break
            if budget <= 0:
                break
    return current


# --------------------------------------------------------------------- #
# campaign driver


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    runs: int
    seed: int
    failures: list[CaseResult]
    saved: list[Path]

    @property
    def ok(self) -> bool:
        """True when every case passed every oracle."""
        return not self.failures


def fuzz(
    runs: int = 25,
    seed: int = 0,
    deep: bool = False,
    differential: bool = True,
    mechanisms: Sequence[str] = MECHANISMS,
    protocols: Sequence[str] = PROTOCOLS,
    propagations: Sequence[str] = PROPAGATIONS,
    shrink: bool = True,
    out_dir: str | Path | None = None,
    progress: Callable[[int, FuzzCase, CaseResult], None] | None = None,
    store: "RunStore | None" = None,
    resume: bool = True,
    max_fresh: int | None = None,
) -> FuzzReport:
    """Run a deterministic fuzz campaign; shrink and serialize failures.

    Case *i* is a pure function of ``(seed, i)`` — rerunning with the
    same arguments replays the identical campaign.  Failures are shrunk
    (unless *shrink* is False) and, when *out_dir* is given, written as
    JSON repros ready to drop into ``tests/corpus/``.

    With a *store*, every case outcome is persisted as a ``kind="fuzz"``
    work unit (content-hashed over the case's canonical JSON), so a
    killed campaign resumes from the checkpoint: already-executed cases
    are replayed from their stored verdicts (findings included) instead
    of re-simulated.  Resumed failures are not re-shrunk or re-saved —
    shrinking happened in the session that first executed them.

    *max_fresh* bounds the freshly-simulated cases: once the budget is
    spent the campaign stops with
    :class:`~repro.orchestrator.runner.CampaignInterrupted` (executed
    cases are already checkpointed in *store*; rerun with resume to
    continue) — the same budget semantics sweep campaigns get from
    ``--max-units``.
    """
    factory = SeedSequenceFactory(seed)
    failures: list[CaseResult] = []
    saved: list[Path] = []
    fresh = 0
    for i in range(runs):
        rng = factory.rng(f"fuzz-case-{i}")
        case = random_case(
            rng, index=i, mechanisms=mechanisms, protocols=protocols,
            propagations=propagations,
        )
        unit = None
        if store is not None:
            from repro.orchestrator.units import WorkUnit, content_unit_id

            case_json = case.canonical_json()
            unit = WorkUnit(
                spec=case.spec,
                seed=case.seed,
                spec_json=case_json,
                unit_id=content_unit_id("fuzz", case_json, case.seed),
            )
            store.register([unit], kind="fuzz")
            if resume:
                payload = store.completed([unit.unit_id]).get(unit.unit_id)
                if payload is not None:
                    result = CaseResult(
                        case=case,
                        findings=tuple(payload.get("findings", ())),
                        fault_stats=dict(payload.get("fault_stats", {})),
                    )
                    if result.failed:
                        failures.append(result)
                    if progress is not None:
                        progress(i, case, result)
                    continue
        if max_fresh is not None and fresh >= max_fresh:
            from repro.orchestrator.runner import CampaignInterrupted

            raise CampaignInterrupted(
                f"fuzz case budget exhausted after {fresh} fresh case(s); "
                f"executed cases are checkpointed — rerun with --resume to "
                f"continue"
            )
        result = run_case(case, deep=deep, differential=differential)
        fresh += 1
        if result.failed:
            if shrink and len(case.schedule):
                small = shrink_case(case, deep=deep, differential=differential)
                result = run_case(
                    small, deep=deep, differential=differential, stop_at_first=False
                )
            failures.append(result)
            if out_dir is not None:
                path = Path(out_dir) / f"fail-seed{seed}-case{i}.json"
                saved.append(
                    save_case(result.case, path, findings=result.findings)
                )
        if store is not None:
            store.record_result(
                unit,
                {
                    "failed": result.failed,
                    "findings": list(result.findings),
                    "fault_stats": result.fault_stats,
                },
                kind="fuzz",
            )
        if progress is not None:
            progress(i, case, result)
    return FuzzReport(runs=runs, seed=seed, failures=failures, saved=saved)
