"""Composable, seed-reproducible fault events and schedules.

A :class:`FaultSchedule` is a *pure description*: an ordered tuple of
fault events plus nothing else.  All randomness needed to realise a
schedule (partial-probability loss draws, GPS noise vectors) comes from
the world's named seed streams at run time, so the same ``(seed,
schedule)`` pair replays bit-identically — the property the fuzzer's
shrinker and the ``tests/corpus/`` replay suite rely on.

Event taxonomy (all windows are half-open ``[start, end)`` in physical
simulation seconds):

- :class:`HelloLossBurst` — Hello deliveries matching a sender/receiver
  filter are dropped with a (default 1.0) probability;
- :class:`NodeOutage` — a node crashes: it neither sends nor receives
  while down, and recovers with its pre-crash table intact;
- :class:`ClockSkew` — an additional fixed local-clock offset for one
  node (on top of the scenario's bounded random skew);
- :class:`HelloIntervalScale` — one node's Hello interval is scaled
  while the window is open (timer drift / load shedding);
- :class:`DeliveryDelay` — matching Hello deliveries arrive an extra
  ``delay`` seconds late, which reorders them against later Hellos;
- :class:`PositionNoise` — a node's *advertised* position (never its
  true one) is perturbed by a vector drawn uniformly from a disk of
  radius ``amplitude``.

Schedules serialize to plain JSON (:meth:`FaultSchedule.to_json` /
:meth:`FaultSchedule.from_json`); the corpus format in
:mod:`repro.faults.fuzz` embeds them next to the scenario that ran them.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, fields
from typing import ClassVar

from repro.util.errors import ConfigurationError
from repro.util.validate import check_non_negative, check_probability

__all__ = [
    "FaultEvent",
    "HelloLossBurst",
    "NodeOutage",
    "ClockSkew",
    "HelloIntervalScale",
    "DeliveryDelay",
    "PositionNoise",
    "FaultSchedule",
]


def _node_tuple(nodes: object) -> tuple[int, ...] | None:
    """Normalise a node filter: None = every node, else a sorted tuple."""
    if nodes is None:
        return None
    out = tuple(sorted(int(n) for n in nodes))  # type: ignore[union-attr]
    if any(n < 0 for n in out):
        raise ConfigurationError(f"node ids must be non-negative, got {out}")
    return out


@dataclass(frozen=True)
class FaultEvent:
    """Base fault event: a time window plus kind-specific fields.

    ``start``/``end`` bound the window ``[start, end)``; ``end`` may be
    ``inf`` for a permanent fault.  Subclasses set :attr:`kind` (the JSON
    discriminator) and add their own fields.
    """

    kind: ClassVar[str] = ""

    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        check_non_negative("start", self.start)
        if not self.end > self.start:
            raise ConfigurationError(
                f"fault window must be non-empty: start={self.start}, end={self.end}"
            )

    def active(self, t: float) -> bool:
        """True while *t* lies inside the event window."""
        return self.start <= t < self.end

    # -- JSON ----------------------------------------------------------- #

    def as_dict(self) -> dict:
        """Plain-JSON form (``inf`` end encoded as ``None``)."""
        out: dict = {"kind": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "end" and math.isinf(value):
                value = None
            elif isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out

    @staticmethod
    def from_dict(data: dict) -> "FaultEvent":
        """Rebuild the concrete event a :meth:`as_dict` payload describes."""
        payload = dict(data)
        kind = payload.pop("kind", None)
        cls = _EVENT_KINDS.get(kind)
        if cls is None:
            raise ConfigurationError(
                f"unknown fault kind {kind!r}; known: {sorted(_EVENT_KINDS)}"
            )
        if payload.get("end") is None:
            payload["end"] = math.inf
        for key in ("senders", "receivers", "nodes"):
            if key in payload and payload[key] is not None:
                payload[key] = tuple(payload[key])
        return cls(**payload)


@dataclass(frozen=True)
class HelloLossBurst(FaultEvent):
    """Drop matching Hello deliveries during the window.

    ``senders`` / ``receivers`` restrict which directed deliveries the
    burst hits (None = any); ``probability`` is the per-delivery drop
    chance (1.0 = a total blackout of the matched links).
    """

    kind: ClassVar[str] = "hello_loss"

    probability: float = 1.0
    senders: tuple[int, ...] | None = None
    receivers: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        check_probability("probability", self.probability)
        if self.probability == 0.0:
            raise ConfigurationError("a loss burst with probability 0 is a no-op")
        object.__setattr__(self, "senders", _node_tuple(self.senders))
        object.__setattr__(self, "receivers", _node_tuple(self.receivers))

    def matches(self, sender: int, receiver: int) -> bool:
        """True if the burst applies to the directed delivery sender->receiver."""
        return (self.senders is None or sender in self.senders) and (
            self.receivers is None or receiver in self.receivers
        )


@dataclass(frozen=True)
class NodeOutage(FaultEvent):
    """One node is down (no sends, no receptions) during the window."""

    kind: ClassVar[str] = "node_outage"

    node: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node < 0:
            raise ConfigurationError(f"node must be non-negative, got {self.node}")


@dataclass(frozen=True)
class ClockSkew(FaultEvent):
    """Extra fixed clock offset for one node (whole-run; window ignored).

    Clock offsets in this simulator are constant per run (drift over a
    100 s run is negligible at the skews studied), so the fault is a
    static shift applied at world construction.
    """

    kind: ClassVar[str] = "clock_skew"

    node: int = 0
    offset: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node < 0:
            raise ConfigurationError(f"node must be non-negative, got {self.node}")
        if not math.isfinite(self.offset):
            raise ConfigurationError(f"offset must be finite, got {self.offset!r}")


@dataclass(frozen=True)
class HelloIntervalScale(FaultEvent):
    """Scale one node's Hello interval while the window is open."""

    kind: ClassVar[str] = "hello_interval_scale"

    node: int = 0
    factor: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node < 0:
            raise ConfigurationError(f"node must be non-negative, got {self.node}")
        if not (math.isfinite(self.factor) and self.factor > 0):
            raise ConfigurationError(
                f"factor must be a positive finite number, got {self.factor!r}"
            )


@dataclass(frozen=True)
class DeliveryDelay(FaultEvent):
    """Matching Hello deliveries arrive ``delay`` seconds late.

    Delayed Hellos can arrive *after* fresher ones sent later — the
    delivery seam applies the standard sequence-number discipline
    (out-of-date versions are discarded on arrival), so reordering
    manifests as extra staleness, exactly as in a real stack.
    """

    kind: ClassVar[str] = "delivery_delay"

    delay: float = 0.5
    senders: tuple[int, ...] | None = None
    receivers: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        check_non_negative("delay", self.delay)
        object.__setattr__(self, "senders", _node_tuple(self.senders))
        object.__setattr__(self, "receivers", _node_tuple(self.receivers))

    def matches(self, sender: int, receiver: int) -> bool:
        """True if the delay applies to the directed delivery sender->receiver."""
        return (self.senders is None or sender in self.senders) and (
            self.receivers is None or receiver in self.receivers
        )


@dataclass(frozen=True)
class PositionNoise(FaultEvent):
    """Perturb a node's advertised GPS position during the window.

    The noise vector is drawn uniformly from the disk of radius
    ``amplitude`` (a hard bound, so audits can extend their drift slack
    by exactly ``amplitude`` rather than a soft sigma).
    """

    kind: ClassVar[str] = "position_noise"

    amplitude: float = 10.0
    nodes: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        check_non_negative("amplitude", self.amplitude)
        object.__setattr__(self, "nodes", _node_tuple(self.nodes))

    def matches(self, node: int) -> bool:
        """True if the noise applies to *node*."""
        return self.nodes is None or node in self.nodes


_EVENT_KINDS: dict[str, type[FaultEvent]] = {
    cls.kind: cls
    for cls in (
        HelloLossBurst,
        NodeOutage,
        ClockSkew,
        HelloIntervalScale,
        DeliveryDelay,
        PositionNoise,
    )
}


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, ordered collection of fault events.

    The schedule is *descriptive only*; pass it to
    :class:`~repro.sim.world.NetworkWorld` (``faults=...``) to arm it.
    Event order is normalised to ``(start, kind, repr)`` so two schedules
    with the same events compare and serialize identically regardless of
    construction order.
    """

    events: tuple[FaultEvent, ...] = ()
    note: str = ""

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.start, e.kind, repr(e)))
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon(self) -> float:
        """Latest finite event boundary (0.0 for an empty schedule)."""
        bounds = [e.start for e in self.events]
        bounds += [e.end for e in self.events if math.isfinite(e.end)]
        return max(bounds, default=0.0)

    def without(self, index: int) -> "FaultSchedule":
        """A copy with the *index*-th event removed (shrinker primitive)."""
        kept = self.events[:index] + self.events[index + 1 :]
        return FaultSchedule(events=kept, note=self.note)

    def subset(self, indices) -> "FaultSchedule":
        """A copy keeping only the events at *indices* (shrinker primitive)."""
        keep = set(indices)
        kept = tuple(e for i, e in enumerate(self.events) if i in keep)
        return FaultSchedule(events=kept, note=self.note)

    def any_active(self, start: float, end: float) -> bool:
        """True if any event window intersects ``[start, end]``.

        Whole-run faults (:class:`ClockSkew`, with its ignored window)
        count as always active — a skewed clock never goes quiet.
        """
        for event in self.events:
            if isinstance(event, ClockSkew):
                return True
            if event.start <= end and event.end > start:
                return True
        return False

    # -- JSON ----------------------------------------------------------- #

    def as_dict(self) -> dict:
        """Plain-JSON form of the whole schedule."""
        return {
            "note": self.note,
            "events": [event.as_dict() for event in self.events],
        }

    @staticmethod
    def from_dict(data: dict) -> "FaultSchedule":
        """Rebuild a schedule from :meth:`as_dict` output."""
        return FaultSchedule(
            events=tuple(FaultEvent.from_dict(e) for e in data.get("events", ())),
            note=str(data.get("note", "")),
        )

    def to_json(self, indent: int | None = 2) -> str:
        """JSON text (stable field order, human-diffable)."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "FaultSchedule":
        """Parse :meth:`to_json` output."""
        return FaultSchedule.from_dict(json.loads(text))
