"""Metrics: connectivity, topology quality, confidence intervals."""

from repro.metrics.connectivity import (
    largest_effective_component,
    logical_topology_connected,
    original_topology_connected,
    pairwise_connectivity_ratio,
    strictly_connected,
)
from repro.metrics.energy import EnergyModel, flood_energy, mean_transmit_power_proxy
from repro.metrics.interference import (
    edge_interference,
    graph_interference,
    snapshot_interference,
)
from repro.metrics.links import LinkLifetimeSummary, LinkLifetimeTracker
from repro.metrics.overhead import OverheadReport, measure_overhead
from repro.metrics.partitions import PartitionSummary, PartitionTracker
from repro.metrics.kconn import (
    edge_connectivity,
    min_link_failures_to_partition,
    snapshot_edge_connectivity,
    vertex_connectivity,
)
from repro.metrics.spanner import StretchReport, stretch_factors
from repro.metrics.stats import Estimate, mean_ci
from repro.metrics.topology import TopologySample, sample_topology

__all__ = [
    "Estimate",
    "mean_ci",
    "strictly_connected",
    "largest_effective_component",
    "pairwise_connectivity_ratio",
    "logical_topology_connected",
    "original_topology_connected",
    "TopologySample",
    "sample_topology",
    "edge_connectivity",
    "vertex_connectivity",
    "snapshot_edge_connectivity",
    "min_link_failures_to_partition",
    "edge_interference",
    "graph_interference",
    "snapshot_interference",
    "StretchReport",
    "stretch_factors",
    "LinkLifetimeTracker",
    "LinkLifetimeSummary",
    "PartitionTracker",
    "PartitionSummary",
    "OverheadReport",
    "measure_overhead",
    "EnergyModel",
    "flood_energy",
    "mean_transmit_power_proxy",
]
