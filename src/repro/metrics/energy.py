"""Energy-consumption accounting.

The paper avoids raw energy numbers ("the diversity of the energy models
may cause unnecessary ambiguity") and reports transmission range instead;
this module supplies the raw accounting for users who do want joules-like
comparisons: transmit cost per message is ``range**alpha`` (plus a fixed
electronics overhead), so a flood's cost is the sum over forwarding nodes
at their current extended ranges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.flood import FloodResult
from repro.sim.world import WorldSnapshot
from repro.util.validate import check_non_negative, check_positive

__all__ = ["EnergyModel", "flood_energy", "mean_transmit_power_proxy"]


@dataclass(frozen=True)
class EnergyModel:
    """Transmit-energy model ``E(r) = r**alpha + overhead`` per message.

    Attributes
    ----------
    alpha:
        Path-loss exponent (2 free space, 4 two-ray ground).
    overhead:
        Fixed per-message electronics cost, in the same (arbitrary) units.
    """

    alpha: float = 2.0
    overhead: float = 0.0

    def __post_init__(self) -> None:
        check_positive("alpha", self.alpha)
        check_non_negative("overhead", self.overhead)

    def per_message(self, tx_range: float | np.ndarray) -> float | np.ndarray:
        """Energy of one transmission at *tx_range*."""
        r = np.asarray(tx_range, dtype=np.float64)
        out = np.power(r, self.alpha) + self.overhead
        return float(out) if out.ndim == 0 else out


def flood_energy(
    snap: WorldSnapshot, result: FloodResult, model: EnergyModel | None = None
) -> float:
    """Total transmit energy of one flood: every reached node forwards once
    at its extended range."""
    model = model or EnergyModel()
    forwarding = result.reached
    return float(np.sum(model.per_message(snap.extended_ranges[forwarding])))


def mean_transmit_power_proxy(
    snap: WorldSnapshot, model: EnergyModel | None = None
) -> float:
    """Mean per-node transmit energy at current ranges (Table-1 companion).

    Nodes with range 0 (no logical neighbors) cost nothing.
    """
    model = model or EnergyModel()
    active = snap.extended_ranges > 0
    if not active.any():
        return 0.0
    costs = model.per_message(snap.extended_ranges[active])
    return float(np.sum(costs) / snap.n_nodes)
