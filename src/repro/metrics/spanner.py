"""Spanner / stretch-factor metrics (the paper's reference [28]).

A topology control scheme with "constant stretch ratio" keeps every
shortest path in the reduced topology within a constant factor of its
length in the original topology.  Two stretches matter here:

- **distance stretch** — Euclidean path length ratio;
- **energy stretch** — ratio under the energy cost ``d**alpha`` (SPT-based
  protocols are exactly the energy-stretch-1 constructions).

Both are computed between a reduced (logical/effective) topology and the
original unit-disk topology of the same snapshot.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

from repro.geometry.csr import CSRGraph
from repro.geometry.points import pairwise_distances

__all__ = ["stretch_factors", "StretchReport"]


from dataclasses import dataclass


@dataclass(frozen=True)
class StretchReport:
    """Stretch of a reduced topology versus a reference topology.

    Attributes
    ----------
    max_stretch / mean_stretch:
        Over all node pairs connected in the reference topology.
    disconnected_pairs:
        Pairs connected in the reference but not in the reduced topology
        (infinite stretch — reported separately, not folded into the max).
    """

    max_stretch: float
    mean_stretch: float
    disconnected_pairs: int


def _all_pairs(adjacency: np.ndarray, weights: np.ndarray) -> np.ndarray:
    masked = np.where(adjacency, weights, 0.0)
    return shortest_path(csr_matrix(masked), method="D", directed=False)


def _all_pairs_csr(graph: CSRGraph, alpha: float) -> np.ndarray:
    """All-pairs shortest paths from an edge-weighted CSR graph.

    The edge cost is ``data**alpha``; zero-length edges are dropped to
    mirror ``csr_matrix``'s explicit-zero elimination in the dense path,
    so both forms see the identical weighted graph.
    """
    if graph.data is None:
        raise ValueError("stretch_factors needs edge distances on CSR inputs")
    weights = np.power(graph.data, alpha)
    keep = weights > 0
    rows = graph.rows_array()[keep]
    matrix = csr_matrix(
        (weights[keep], (rows, graph.indices[keep])), shape=(graph.n, graph.n)
    )
    return shortest_path(matrix, method="D", directed=False)


def stretch_factors(
    reduced: np.ndarray | CSRGraph,
    reference: np.ndarray | CSRGraph,
    positions: np.ndarray,
    alpha: float = 1.0,
    dist: np.ndarray | None = None,
) -> StretchReport:
    """Stretch of *reduced* w.r.t. *reference* under cost ``d**alpha``.

    ``alpha = 1`` gives distance stretch; ``alpha = 2`` or ``4`` energy
    stretch.  Both graphs are treated as undirected.  Pass a snapshot's
    precomputed *dist* to skip recomputing pairwise distances, or pass
    edge-weighted :class:`~repro.geometry.csr.CSRGraph` topologies (e.g.
    ``snap.effective_bidirectional_csr()``) and no dense matrix is built
    for the adjacency side at all (the shortest-path tables themselves
    remain ``(n, n)`` — inherent to an all-pairs quantity).
    """
    sparse_inputs = isinstance(reduced, CSRGraph) or isinstance(reference, CSRGraph)
    if sparse_inputs:
        if not (isinstance(reduced, CSRGraph) and isinstance(reference, CSRGraph)):
            raise ValueError("pass both topologies dense or both as CSRGraph")
        ref_sp = _all_pairs_csr(reference, alpha)
        red_sp = _all_pairs_csr(reduced, alpha)
        n = reference.n
    else:
        if dist is None:
            dist = pairwise_distances(positions)
        weights = np.power(dist, alpha, where=dist > 0, out=np.zeros_like(dist))
        ref_sp = _all_pairs(reference | reference.T, weights)
        red_sp = _all_pairs(reduced | reduced.T, weights)
        n = dist.shape[0]
    iu, iv = np.triu_indices(n, k=1)
    ref_vals = ref_sp[iu, iv]
    red_vals = red_sp[iu, iv]
    connected_ref = np.isfinite(ref_vals) & (ref_vals > 0)
    if not connected_ref.any():
        return StretchReport(1.0, 1.0, 0)
    red_of_interest = red_vals[connected_ref]
    ref_of_interest = ref_vals[connected_ref]
    broken = ~np.isfinite(red_of_interest)
    ratios = red_of_interest[~broken] / ref_of_interest[~broken]
    if ratios.size == 0:
        return StretchReport(math.inf, math.inf, int(broken.sum()))
    return StretchReport(
        max_stretch=float(ratios.max()),
        mean_stretch=float(ratios.mean()),
        disconnected_pairs=int(broken.sum()),
    )
