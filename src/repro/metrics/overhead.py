"""Control-overhead accounting per consistency mechanism.

The paper argues qualitatively about mechanism costs (the reactive
scheme's flooding, the proactive scheme's multiple stored views, weak
consistency's k-deep histories).  This module turns channel counters and
table state into comparable per-node, per-second figures so those costs
appear in the same tables as the connectivity benefits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.world import NetworkWorld

__all__ = ["OverheadReport", "measure_overhead"]


@dataclass(frozen=True)
class OverheadReport:
    """Per-node, per-second control costs of a (partially) completed run.

    Attributes
    ----------
    hello_rate:
        Hello transmissions per node per second.
    sync_rate:
        Synchronization (initiation-flood) transmissions per node/second —
        nonzero only for the reactive mechanism.
    delivery_rate:
        Hello receptions per node per second (density-dependent).
    packet_decision_rate:
        Packet-triggered re-decisions per node per second (view-sync and
        proactive pay CPU here; the others decide only at Hello times).
    stored_hellos_per_node:
        Mean retained Hello records per node (memory cost of weak
        consistency's histories and the proactive scheme's versions).
    gossip_rate:
        Anti-entropy messages (digests, deltas, pushes, maydays) per node
        per second — nonzero only for the gossip mechanism, whose epidemic
        traffic rides beside the Hello stream instead of inside it.
    """

    hello_rate: float
    sync_rate: float
    delivery_rate: float
    packet_decision_rate: float
    stored_hellos_per_node: float
    gossip_rate: float = 0.0

    def row(self) -> dict:
        """Flat dict row for tables."""
        return {
            "hello_per_node_s": self.hello_rate,
            "sync_per_node_s": self.sync_rate,
            "rx_per_node_s": self.delivery_rate,
            "pkt_decisions_per_node_s": self.packet_decision_rate,
            "stored_hellos": self.stored_hellos_per_node,
            "gossip_per_node_s": self.gossip_rate,
        }


def measure_overhead(world: NetworkWorld) -> OverheadReport:
    """Snapshot the control-overhead counters of *world* at the current time."""
    elapsed = max(world.engine.now, 1e-9)
    n = max(world.config.n_nodes, 1)
    stats = world.channel.stats
    stored = sum(
        len(node.table.history_of(nbr))
        for node in world.nodes
        for nbr in node.table.known_neighbors()
    )
    packet_decisions = sum(node.packet_decisions for node in world.nodes)
    gossip_messages = 0 if world.gossip is None else world.gossip.messages
    return OverheadReport(
        hello_rate=stats.hello_messages / n / elapsed,
        sync_rate=stats.sync_messages / n / elapsed,
        delivery_rate=stats.deliveries / n / elapsed,
        packet_decision_rate=packet_decisions / n / elapsed,
        stored_hellos_per_node=stored / n,
        gossip_rate=gossip_messages / n / elapsed,
    )
