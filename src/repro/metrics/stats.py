"""Statistics helpers: means with 95 % confidence intervals.

The paper reports every data point with a 95 % confidence interval over 20
independent repetitions; :func:`mean_ci` is the one place that computation
lives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

__all__ = ["Estimate", "mean_ci"]


@dataclass(frozen=True)
class Estimate:
    """A mean with a symmetric confidence half-width.

    Attributes
    ----------
    mean:
        Sample mean.
    half_width:
        Half-width of the confidence interval (0 for a single sample).
    n:
        Number of samples.
    """

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        """Lower confidence bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper confidence bound."""
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g}"


def mean_ci(samples, confidence: float = 0.95) -> Estimate:
    """Mean and Student-t confidence half-width of *samples*.

    Degenerate inputs are handled the way experiment code wants: an empty
    sequence yields NaN; a single sample yields half-width 0.
    """
    arr = np.asarray(list(samples), dtype=np.float64)
    n = arr.size
    if n == 0:
        return Estimate(mean=math.nan, half_width=math.nan, n=0)
    mean = float(arr.mean())
    if n == 1:
        return Estimate(mean=mean, half_width=0.0, n=1)
    sem = float(arr.std(ddof=1) / math.sqrt(n))
    if sem == 0.0:
        return Estimate(mean=mean, half_width=0.0, n=n)
    t = float(sps.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return Estimate(mean=mean, half_width=t * sem, n=n)
