"""Connectivity metrics over world snapshots.

Two notions from Section 5.1:

- **weak connectivity** — task-based: the delivery ratio of a flood from a
  random source (computed by :mod:`repro.sim.flood`; aggregated here);
- **strict connectivity** — the undirected effective topology of a
  snapshot is connected (checked here with the omniscient global view the
  paper calls "an omniscient god").

Also provided: pairwise connectivity ratio (fraction of ordered node pairs
connected in the directed effective topology), the quantity the delivery
ratio estimates.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components as _cc

from repro.geometry.csr import (
    csr_is_connected,
    csr_largest_component_fraction,
)
from repro.geometry.graphs import is_connected, largest_component_fraction
from repro.sim.world import WorldSnapshot

__all__ = [
    "strictly_connected",
    "largest_effective_component",
    "pairwise_connectivity_ratio",
    "logical_topology_connected",
    "original_topology_connected",
]


def strictly_connected(snap: WorldSnapshot, physical_neighbor_mode: bool = False) -> bool:
    """True iff the snapshot's undirected effective topology is connected."""
    if snap.prefers_dense:
        return is_connected(snap.effective_bidirectional(physical_neighbor_mode))
    return csr_is_connected(snap.effective_bidirectional_csr(physical_neighbor_mode))


def largest_effective_component(
    snap: WorldSnapshot, physical_neighbor_mode: bool = False
) -> float:
    """Fraction of nodes in the largest effective component."""
    if snap.prefers_dense:
        return largest_component_fraction(
            snap.effective_bidirectional(physical_neighbor_mode)
        )
    return csr_largest_component_fraction(
        snap.effective_bidirectional_csr(physical_neighbor_mode)
    )


def pairwise_connectivity_ratio(
    snap: WorldSnapshot, physical_neighbor_mode: bool = False
) -> float:
    """Fraction of ordered node pairs (u, v), u != v, with a directed
    effective path u -> v.

    This is the quantity the paper's flood-based delivery ratio samples;
    computing it exactly over strongly-connected components lets tests
    check the estimator against ground truth.
    """
    n = snap.n_nodes
    if n <= 1:
        return 1.0
    if snap.prefers_dense:
        adj = snap.effective_directed(physical_neighbor_mode)
        matrix = csr_matrix(adj)
        src, dst = np.nonzero(adj)
    else:
        graph = snap.effective_directed_csr(physical_neighbor_mode)
        matrix = graph.to_scipy()
        src, dst = graph.rows_array(), graph.indices
    n_comp, labels = _cc(matrix, directed=True, connection="strong")
    # Build the component DAG's reachability by propagating over a
    # topological order (components are numbered in topological order by
    # scipy for directed graphs).
    comp_sizes = np.bincount(labels, minlength=n_comp)
    comp_adj = np.zeros((n_comp, n_comp), dtype=bool)
    comp_adj[labels[src], labels[dst]] = True
    np.fill_diagonal(comp_adj, False)
    reach = np.eye(n_comp, dtype=bool)
    # scipy labels strongly connected components in reverse topological
    # order is not guaranteed; do a simple fixpoint instead (n_comp is
    # small for the graphs we measure).
    changed = True
    while changed:
        new = reach | (comp_adj @ reach)
        changed = bool((new != reach).any())
        reach = new
    pair_count = 0
    for a in range(n_comp):
        reachable_nodes = comp_sizes[reach[a]].sum()
        # ordered pairs from nodes of component a to all reachable nodes,
        # minus self-pairs within a.
        pair_count += comp_sizes[a] * (reachable_nodes - 1)
    return float(pair_count / (n * (n - 1)))


def logical_topology_connected(snap: WorldSnapshot) -> bool:
    """True iff the *undirected* logical topology is connected.

    A logical link exists when at least one end selected the other (the
    union of logical neighbor sets forms the logical topology, Section 1).
    """
    if snap.prefers_dense:
        return is_connected(snap.logical | snap.logical.T)
    # directed=False makes scipy treat each CSR edge as undirected — the
    # same union-of-selections semantics as logical | logical.T.
    return csr_is_connected(snap.logical_csr)


def original_topology_connected(snap: WorldSnapshot) -> bool:
    """True iff the unit-disk graph at the normal range is connected."""
    if snap.prefers_dense:
        return is_connected(snap.original_topology())
    return csr_is_connected(snap.original_csr())
