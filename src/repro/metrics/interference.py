"""Interference metrics (Burkhart, von Rickenbach, Wattenhofer &
Zollinger 2004 — the paper's reference [3]).

"Does topology control reduce interference?"  Their coverage-based
measure: the interference of an edge (u, v) is the number of *other*
nodes inside the union of the two disks of radius ``d(u, v)`` centred at
u and v — everyone whose reception the link's transmissions can disturb.
Graph interference is the maximum (or mean) over edges.  The paper lists
"minimal interference" among the desirable properties its framework must
not break, so the harness measures it.

All entry points accept an optional precomputed ``dist`` matrix;
:func:`snapshot_interference` always reuses the snapshot's own matrix, so
no distance is ever computed twice for the same instant.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.points import pairwise_distances
from repro.sim.world import WorldSnapshot

__all__ = [
    "edge_interference",
    "graph_interference",
    "snapshot_interference",
]

#: Edges per coverage block (~2 MB of bool per temporary at n=1000).
_COVER_BLOCK_CELLS = 2_000_000


def edge_interference(
    positions: np.ndarray, u: int, v: int, dist: np.ndarray | None = None
) -> int:
    """Coverage of edge (u, v): nodes (excluding u, v) within d(u, v) of
    either endpoint."""
    d = pairwise_distances(positions) if dist is None else dist
    radius = d[u, v]
    covered = (d[u] <= radius) | (d[v] <= radius)
    covered[u] = covered[v] = False
    return int(covered.sum())


def graph_interference(
    adjacency: np.ndarray,
    positions: np.ndarray,
    dist: np.ndarray | None = None,
) -> tuple[int, float]:
    """(max, mean) edge interference of an undirected graph.

    Returns (0, 0.0) for edgeless graphs.  Coverage is computed for all
    edges at once in blocked ``(edges, nodes)`` broadcasts; both endpoints
    always cover themselves (``d = 0``), so the per-edge count is the row
    sum minus two — identical to masking them out one edge at a time.
    """
    if dist is None:
        dist = pairwise_distances(positions)
    iu, iv = np.nonzero(np.triu(adjacency | adjacency.T, k=1))
    if iu.size == 0:
        return (0, 0.0)
    n = dist.shape[0]
    radius = dist[iu, iv]
    counts = np.empty(iu.size, dtype=np.int64)
    block = max(1, _COVER_BLOCK_CELLS // max(n, 1))
    for s in range(0, iu.size, block):
        bu, bv = iu[s : s + block], iv[s : s + block]
        br = radius[s : s + block, np.newaxis]
        covered = (dist[bu] <= br) | (dist[bv] <= br)
        counts[s : s + block] = covered.sum(axis=1) - 2
    return (int(counts.max()), float(counts.mean()))


def snapshot_interference(
    snap: WorldSnapshot, physical_neighbor_mode: bool = False
) -> tuple[int, float]:
    """(max, mean) interference of a snapshot's effective topology.

    Reuses the snapshot's precomputed distance matrix.
    """
    return graph_interference(
        snap.effective_bidirectional(physical_neighbor_mode),
        snap.positions,
        dist=snap.dist,
    )
