"""Interference metrics (Burkhart, von Rickenbach, Wattenhofer &
Zollinger 2004 — the paper's reference [3]).

"Does topology control reduce interference?"  Their coverage-based
measure: the interference of an edge (u, v) is the number of *other*
nodes inside the union of the two disks of radius ``d(u, v)`` centred at
u and v — everyone whose reception the link's transmissions can disturb.
Graph interference is the maximum (or mean) over edges.  The paper lists
"minimal interference" among the desirable properties its framework must
not break, so the harness measures it.

All entry points accept an optional precomputed ``dist`` matrix;
:func:`snapshot_interference` reuses whatever the snapshot already holds:
the dense matrix below the sparse switch (materialized lazily, so a
caller that never asks for interference never pays for it), or the CSR
neighborhoods at scale — the coverage disks of an effective link never
extend past the snapshot's own neighborhood radius, so the sparse kernel
needs no quadratic structure at all.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.csr import CSRGraph
from repro.geometry.points import pairwise_distances
from repro.sim.world import WorldSnapshot

__all__ = [
    "edge_interference",
    "graph_interference",
    "csr_graph_interference",
    "snapshot_interference",
]

#: Edges per coverage block (~2 MB of bool per temporary at n=1000).
_COVER_BLOCK_CELLS = 2_000_000


def edge_interference(
    positions: np.ndarray, u: int, v: int, dist: np.ndarray | None = None
) -> int:
    """Coverage of edge (u, v): nodes (excluding u, v) within d(u, v) of
    either endpoint."""
    d = pairwise_distances(positions) if dist is None else dist
    radius = d[u, v]
    covered = (d[u] <= radius) | (d[v] <= radius)
    covered[u] = covered[v] = False
    return int(covered.sum())


def graph_interference(
    adjacency: np.ndarray,
    positions: np.ndarray,
    dist: np.ndarray | None = None,
) -> tuple[int, float]:
    """(max, mean) edge interference of an undirected graph.

    Returns (0, 0.0) for edgeless graphs.  Coverage is computed for all
    edges at once in blocked ``(edges, nodes)`` broadcasts; both endpoints
    always cover themselves (``d = 0``), so the per-edge count is the row
    sum minus two — identical to masking them out one edge at a time.
    """
    if dist is None:
        dist = pairwise_distances(positions)
    iu, iv = np.nonzero(np.triu(adjacency | adjacency.T, k=1))
    if iu.size == 0:
        return (0, 0.0)
    n = dist.shape[0]
    radius = dist[iu, iv]
    counts = np.empty(iu.size, dtype=np.int64)
    block = max(1, _COVER_BLOCK_CELLS // max(n, 1))
    for s in range(0, iu.size, block):
        bu, bv = iu[s : s + block], iv[s : s + block]
        br = radius[s : s + block, np.newaxis]
        covered = (dist[bu] <= br) | (dist[bv] <= br)
        counts[s : s + block] = covered.sum(axis=1) - 2
    return (int(counts.max()), float(counts.mean()))


def csr_graph_interference(graph: CSRGraph, reach: CSRGraph) -> tuple[int, float]:
    """(max, mean) edge interference from CSR structures only.

    *graph* is the (undirected, edge-weighted) topology under test;
    *reach* holds each node's neighborhood out to at least the longest
    edge of *graph*, with distances.  The coverage disk of edge (u, v) has
    radius ``d(u, v)``, so every covered node already sits in u's or v's
    *reach* row — counting is a per-edge merge of two short sorted rows,
    O(edges * degree) total, never ``(n, n)``.

    Bit-identical to :func:`graph_interference` on the densified inputs:
    the same distance values face the same ``<=`` predicate.
    """
    rows, cols, data = graph.rows_array(), graph.indices, graph.data
    upper = rows < cols
    iu, iv, radius = rows[upper], cols[upper], data[upper]
    if iu.size == 0:
        return (0, 0.0)
    counts = np.empty(iu.size, dtype=np.int64)
    indptr, indices, dist = reach.indptr, reach.indices, reach.data
    for k in range(iu.size):
        u, v, r = iu[k], iv[k], radius[k]
        su, eu = indptr[u], indptr[u + 1]
        sv, ev = indptr[v], indptr[v + 1]
        cu = indices[su:eu][dist[su:eu] <= r]
        cv = indices[sv:ev][dist[sv:ev] <= r]
        # both endpoints appear in each other's coverage (d(u, v) = r),
        # so the union minus the two endpoints matches the dense row-sum
        # minus 2.
        counts[k] = np.union1d(cu, cv).size - 2
    return (int(counts.max()), float(counts.mean()))


def snapshot_interference(
    snap: WorldSnapshot, physical_neighbor_mode: bool = False
) -> tuple[int, float]:
    """(max, mean) interference of a snapshot's effective topology.

    Reuses the snapshot's distance matrix when it is (or may cheaply be)
    dense; at scale, runs entirely on the snapshot's CSR neighborhoods.
    """
    if snap.prefers_dense:
        return graph_interference(
            snap.effective_bidirectional(physical_neighbor_mode),
            snap.positions,
            dist=snap.dist,
        )
    if snap.n_nodes == 0:
        return (0, 0.0)
    return csr_graph_interference(
        snap.effective_bidirectional_csr(physical_neighbor_mode),
        snap.neighbor_csr(float(snap.extended_ranges.max())),
    )
