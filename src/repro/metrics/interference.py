"""Interference metrics (Burkhart, von Rickenbach, Wattenhofer &
Zollinger 2004 — the paper's reference [3]).

"Does topology control reduce interference?"  Their coverage-based
measure: the interference of an edge (u, v) is the number of *other*
nodes inside the union of the two disks of radius ``d(u, v)`` centred at
u and v — everyone whose reception the link's transmissions can disturb.
Graph interference is the maximum (or mean) over edges.  The paper lists
"minimal interference" among the desirable properties its framework must
not break, so the harness measures it.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.points import pairwise_distances
from repro.sim.world import WorldSnapshot

__all__ = [
    "edge_interference",
    "graph_interference",
    "snapshot_interference",
]


def edge_interference(
    positions: np.ndarray, u: int, v: int, dist: np.ndarray | None = None
) -> int:
    """Coverage of edge (u, v): nodes (excluding u, v) within d(u, v) of
    either endpoint."""
    d = pairwise_distances(positions) if dist is None else dist
    radius = d[u, v]
    covered = (d[u] <= radius) | (d[v] <= radius)
    covered[u] = covered[v] = False
    return int(covered.sum())


def graph_interference(
    adjacency: np.ndarray, positions: np.ndarray
) -> tuple[int, float]:
    """(max, mean) edge interference of an undirected graph.

    Returns (0, 0.0) for edgeless graphs.
    """
    dist = pairwise_distances(positions)
    iu, iv = np.nonzero(np.triu(adjacency | adjacency.T, k=1))
    if iu.size == 0:
        return (0, 0.0)
    values = [
        edge_interference(positions, int(u), int(v), dist) for u, v in zip(iu, iv)
    ]
    return (int(max(values)), float(np.mean(values)))


def snapshot_interference(
    snap: WorldSnapshot, physical_neighbor_mode: bool = False
) -> tuple[int, float]:
    """(max, mean) interference of a snapshot's effective topology."""
    return graph_interference(
        snap.effective_bidirectional(physical_neighbor_mode), snap.positions
    )
