"""Fault-tolerance metrics: k-connectivity of effective topologies.

The paper's related work (Bahramgiri et al.; Li & Hou FLSS; Li, Wan, Wang
& Yi) builds K-connected topologies so that "a few link failures" do not
partition the network, and notes such redundancy "can only reduce but not
eliminate network partitioning" under mobility.  These metrics quantify
that redundancy on snapshots so the trade-off can be measured rather than
asserted.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.sim.world import WorldSnapshot

__all__ = [
    "edge_connectivity",
    "vertex_connectivity",
    "snapshot_edge_connectivity",
    "min_link_failures_to_partition",
]


def _to_graph(adj: np.ndarray) -> nx.Graph:
    g = nx.Graph()
    n = adj.shape[0]
    g.add_nodes_from(range(n))
    iu, iv = np.nonzero(np.triu(adj, k=1))
    g.add_edges_from(zip(iu.tolist(), iv.tolist()))
    return g


def edge_connectivity(adj: np.ndarray) -> int:
    """Global edge connectivity of an undirected boolean adjacency.

    0 for disconnected (or single-node) graphs.
    """
    n = adj.shape[0]
    if n <= 1:
        return 0
    g = _to_graph(adj)
    if not nx.is_connected(g):
        return 0
    return int(nx.edge_connectivity(g))


def vertex_connectivity(adj: np.ndarray) -> int:
    """Global vertex connectivity of an undirected boolean adjacency."""
    n = adj.shape[0]
    if n <= 1:
        return 0
    g = _to_graph(adj)
    if not nx.is_connected(g):
        return 0
    return int(nx.node_connectivity(g))


def snapshot_edge_connectivity(
    snap: WorldSnapshot, physical_neighbor_mode: bool = False
) -> int:
    """Edge connectivity of a snapshot's undirected effective topology."""
    if snap.prefers_dense:
        return edge_connectivity(snap.effective_bidirectional(physical_neighbor_mode))
    graph = snap.effective_bidirectional_csr(physical_neighbor_mode)
    if graph.n <= 1:
        return 0
    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    rows, cols = graph.rows_array(), graph.indices
    upper = rows < cols
    g.add_edges_from(zip(rows[upper].tolist(), cols[upper].tolist()))
    if not nx.is_connected(g):
        return 0
    return int(nx.edge_connectivity(g))


def min_link_failures_to_partition(
    snap: WorldSnapshot, physical_neighbor_mode: bool = False
) -> int:
    """How many simultaneous link failures a snapshot can absorb.

    Edge connectivity minus nothing — named for readability at call sites:
    an MST-like topology returns 1 ("a single link failure is enough to
    disconnect the entire network", Section 5.2), K-connected designs
    return K, disconnected snapshots return 0.
    """
    return snapshot_edge_connectivity(snap, physical_neighbor_mode)
