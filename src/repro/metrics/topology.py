"""Topology-quality metrics: transmission range and node degree.

These are the paper's Table 1 / Fig. 8 quantities:

- *average transmission range* — mean over nodes of the range actually in
  force (extended range when a buffer zone is active), a proxy for both
  energy and channel reuse;
- *logical node degree* — mean logical-neighbor count;
- *physical node degree* — mean count of nodes within the extended range
  (what "counts" as degree in physical-neighbor mode, Fig. 8b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.world import WorldSnapshot

__all__ = ["TopologySample", "sample_topology"]


@dataclass(frozen=True)
class TopologySample:
    """Topology metrics of one snapshot."""

    time: float
    mean_actual_range: float
    mean_extended_range: float
    mean_logical_degree: float
    mean_physical_degree: float
    max_extended_range: float


def sample_topology(snap: WorldSnapshot) -> TopologySample:
    """Compute the Table-1 / Fig-8 metrics for one snapshot."""
    return TopologySample(
        time=snap.time,
        mean_actual_range=float(snap.actual_ranges.mean()),
        mean_extended_range=float(snap.extended_ranges.mean()),
        mean_logical_degree=float(snap.logical_degrees().mean()),
        mean_physical_degree=float(snap.physical_degrees().mean()),
        max_extended_range=float(snap.extended_ranges.max(initial=0.0)),
    )
