"""Link-lifetime statistics: how long do links survive under mobility?

The paper's whole failure analysis is about links silently dying between
Hello refreshes.  This tracker turns that story into distributions: feed
it snapshots at the sampling cadence and it records every link's up-time,
separating completed lifetimes from censored ones (links still up when
observation ends).  Comparing lifetimes across protocols quantifies the
redundancy argument — a protocol whose links live longer needs thinner
buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.world import WorldSnapshot
from repro.util.errors import SimulationError

__all__ = ["LinkLifetimeSummary", "LinkLifetimeTracker"]


@dataclass(frozen=True)
class LinkLifetimeSummary:
    """Distribution summary of observed link lifetimes.

    Attributes
    ----------
    completed:
        Number of links that went down during observation.
    censored:
        Links still up at the end (their lifetimes are lower bounds).
    mean / median / p90:
        Statistics over *completed* lifetimes, seconds (NaN if none).
    break_rate:
        Link breaks per link-second of observed up-time — the hazard the
        buffer zone has to absorb.
    """

    completed: int
    censored: int
    mean: float
    median: float
    p90: float
    break_rate: float


class LinkLifetimeTracker:
    """Accumulates link up/down transitions from a snapshot sequence.

    Parameters
    ----------
    kind:
        ``"effective"`` (bidirectional effective links), ``"logical"``
        (union of selections), or ``"original"`` (normal-range links).
    physical_neighbor_mode:
        Acceptance rule for the effective topology.
    """

    _KINDS = ("effective", "logical", "original")

    def __init__(self, kind: str = "effective", physical_neighbor_mode: bool = False) -> None:
        if kind not in self._KINDS:
            raise SimulationError(f"kind must be one of {self._KINDS}, got {kind!r}")
        self.kind = kind
        self.physical_neighbor_mode = physical_neighbor_mode
        self._up_since: dict[tuple[int, int], float] = {}
        self._durations: list[float] = []
        self._last_time: float | None = None
        self._finished = False

    def _links_of(self, snap: WorldSnapshot) -> set[tuple[int, int]]:
        if snap.prefers_dense:
            if self.kind == "effective":
                adj = snap.effective_bidirectional(self.physical_neighbor_mode)
            elif self.kind == "logical":
                adj = snap.logical | snap.logical.T
            else:
                adj = snap.original_topology()
            iu, iv = np.nonzero(np.triu(adj, k=1))
            return set(zip(iu.tolist(), iv.tolist()))
        if self.kind == "effective":
            graph = snap.effective_bidirectional_csr(self.physical_neighbor_mode)
        elif self.kind == "logical":
            graph = snap.logical_csr
        else:
            graph = snap.original_csr()
        # (min, max) normalization covers both the symmetric kinds (each
        # link listed once per direction) and the logical union semantics
        # (a link exists when either end selected the other).
        rows, cols = graph.rows_array(), graph.indices
        lo = np.minimum(rows, cols)
        hi = np.maximum(rows, cols)
        return set(zip(lo.tolist(), hi.tolist()))

    def observe(self, snap: WorldSnapshot) -> None:
        """Record the link set of *snap* (call in increasing time order)."""
        if self._finished:
            raise SimulationError("tracker already finished")
        if self._last_time is not None and snap.time < self._last_time:
            raise SimulationError("snapshots must be observed in time order")
        current = self._links_of(snap)
        known = set(self._up_since)
        for link in current - known:
            self._up_since[link] = snap.time
        for link in known - current:
            self._durations.append(snap.time - self._up_since.pop(link))
        self._last_time = snap.time

    def finish(self) -> LinkLifetimeSummary:
        """Close observation and summarise (open links become censored)."""
        self._finished = True
        censored = len(self._up_since)
        completed = len(self._durations)
        if self._last_time is not None:
            censored_time = sum(
                self._last_time - start for start in self._up_since.values()
            )
        else:
            censored_time = 0.0
        total_up_time = sum(self._durations) + censored_time
        if completed:
            arr = np.asarray(self._durations)
            mean = float(arr.mean())
            median = float(np.median(arr))
            p90 = float(np.percentile(arr, 90))
        else:
            mean = median = p90 = float("nan")
        break_rate = completed / total_up_time if total_up_time > 0 else 0.0
        return LinkLifetimeSummary(
            completed=completed,
            censored=censored,
            mean=mean,
            median=median,
            p90=p90,
            break_rate=break_rate,
        )
