"""Partition-episode tracking: when does the network break, and for how long?

The connectivity ratio averages over time; operators ask a different
question — *how long do partitions last when they happen?*  Feed this
tracker snapshots at the sampling cadence and it segments the run into
connected/partitioned episodes of the (undirected) effective topology,
yielding episode counts, durations, and availability.  A mechanism that
converts one long partition into many brief ones is invisible to the mean
connectivity ratio but very visible here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.connectivity import strictly_connected
from repro.sim.world import WorldSnapshot
from repro.util.errors import SimulationError

__all__ = ["PartitionSummary", "PartitionTracker"]


@dataclass(frozen=True)
class PartitionSummary:
    """Episode statistics of one observed run.

    Attributes
    ----------
    availability:
        Fraction of observed time the network was strictly connected.
    episodes:
        Number of completed partition episodes (entered and exited).
    mean_duration / max_duration:
        Statistics over completed partition episodes, seconds (NaN/0 if
        none completed).
    ongoing:
        True if the run ended inside a partition episode.
    """

    availability: float
    episodes: int
    mean_duration: float
    max_duration: float
    ongoing: bool


class PartitionTracker:
    """Segments a snapshot sequence into connected/partitioned episodes.

    Parameters
    ----------
    physical_neighbor_mode:
        Acceptance rule used for the effective topology.
    """

    def __init__(self, physical_neighbor_mode: bool = False) -> None:
        self.physical_neighbor_mode = physical_neighbor_mode
        self._durations: list[float] = []
        self._partition_since: float | None = None
        self._first_time: float | None = None
        self._last_time: float | None = None
        self._connected_time = 0.0
        self._last_connected: bool | None = None
        self._finished = False

    def observe(self, snap: WorldSnapshot) -> None:
        """Record one snapshot (call in increasing time order)."""
        if self._finished:
            raise SimulationError("tracker already finished")
        if self._last_time is not None and snap.time < self._last_time:
            raise SimulationError("snapshots must be observed in time order")
        connected = strictly_connected(snap, self.physical_neighbor_mode)
        if self._first_time is None:
            self._first_time = snap.time
        else:
            dt = snap.time - self._last_time
            if self._last_connected:
                self._connected_time += dt
        if connected and self._partition_since is not None:
            self._durations.append(snap.time - self._partition_since)
            self._partition_since = None
        elif not connected and self._partition_since is None:
            self._partition_since = snap.time
        self._last_time = snap.time
        self._last_connected = connected

    def finish(self) -> PartitionSummary:
        """Close observation and summarise."""
        self._finished = True
        total = (
            (self._last_time - self._first_time)
            if self._first_time is not None and self._last_time is not None
            else 0.0
        )
        availability = self._connected_time / total if total > 0 else 1.0
        if self._durations:
            arr = np.asarray(self._durations)
            mean = float(arr.mean())
            longest = float(arr.max())
        else:
            mean = float("nan")
            longest = 0.0
        return PartitionSummary(
            availability=availability,
            episodes=len(self._durations),
            mean_duration=mean,
            max_duration=longest,
            ongoing=self._partition_since is not None,
        )
