"""Yao-graph topology control (Yao; Wang, Li, Wan & Frieder 2003).

The disk around a node is split into ``k`` equal cones; the nearest
1-hop neighbor in each non-empty cone becomes a logical neighbor.  The
Yao graph is connected for ``k >= 6``; the paper notes Yao with k = 6 is a
special case of CBTC with alpha = 2*pi/3.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.framework import SelectionResult
from repro.core.views import LocalView
from repro.geometry.cones import cone_index
from repro.protocols.base import TopologyControlProtocol, register_protocol
from repro.util.validate import check_int_range

__all__ = ["YaoProtocol"]


@register_protocol
class YaoProtocol(TopologyControlProtocol):
    """Yao-graph protocol: nearest neighbor per cone.

    Parameters
    ----------
    k:
        Number of cones (>= 6 guarantees connectivity of the Yao graph on
        consistent views).
    """

    name = "yao"

    def __init__(self, k: int = 6) -> None:
        check_int_range("k", k, 1)
        self.k = k

    def select(self, view: LocalView) -> SelectionResult:
        own = np.asarray(view.own_hello.position, dtype=np.float64)
        best_per_cone: dict[int, tuple[float, int]] = {}
        for nid, hello in view.neighbor_hellos.items():
            pos = np.asarray(hello.position, dtype=np.float64)
            d = float(np.hypot(*(pos - own)))
            if d > view.normal_range:
                continue
            angle = math.atan2(pos[1] - own[1], pos[0] - own[0])
            cone = cone_index(angle, self.k)
            incumbent = best_per_cone.get(cone)
            # Deterministic tie-break on (distance, ID).
            if incumbent is None or (d, nid) < incumbent:
                best_per_cone[cone] = (d, nid)
        chosen = frozenset(nid for _, nid in best_per_cone.values())
        max_dist = max((d for d, _ in best_per_cone.values()), default=0.0)
        return SelectionResult(
            owner=view.owner, logical_neighbors=chosen, actual_range=max_dist
        )

    def __repr__(self) -> str:
        return f"YaoProtocol(k={self.k})"
