"""Localized topology control protocols.

Importing this package registers every protocol under its short name
(``rng``, ``gabriel``, ``mst``, ``spt2``, ``spt4``, ``yao``, ``cbtc``,
``kneigh``, ``none``); use :func:`make_protocol` to instantiate by name.
"""

from repro.protocols.base import (
    ConditionProtocol,
    TopologyControlProtocol,
    available_protocols,
    make_protocol,
    register_protocol,
)
from repro.protocols.cbtc import CbtcProtocol
from repro.protocols.composite import CompositeProtocol
from repro.protocols.enclosure import EnclosureProtocol
from repro.protocols.gabriel import GabrielProtocol
from repro.protocols.kneigh import KNeighProtocol
from repro.protocols.mst import MstProtocol
from repro.protocols.none import NoTopologyControl
from repro.protocols.rng import RngProtocol
from repro.protocols.search_region import SearchRegionSptProtocol
from repro.protocols.spt import Spt2Protocol, Spt4Protocol, SptProtocol
from repro.protocols.xtc import XtcProtocol
from repro.protocols.yao import YaoProtocol

__all__ = [
    "TopologyControlProtocol",
    "ConditionProtocol",
    "register_protocol",
    "make_protocol",
    "available_protocols",
    "RngProtocol",
    "GabrielProtocol",
    "MstProtocol",
    "SptProtocol",
    "Spt2Protocol",
    "Spt4Protocol",
    "SearchRegionSptProtocol",
    "YaoProtocol",
    "CbtcProtocol",
    "KNeighProtocol",
    "NoTopologyControl",
    "EnclosureProtocol",
    "XtcProtocol",
    "CompositeProtocol",
]
