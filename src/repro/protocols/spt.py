"""SPT-based (minimum-energy) topology control (Rodoplu & Meng 1999;
Li & Halpern 2001).

With the energy cost ``c = d**alpha`` the local shortest-path tree keeps a
direct link only when no relay path consumes less energy — removal
condition 2.  The paper simulates alpha = 2 (free space, "SPT-2") and
alpha = 4 (two-ray ground, "SPT-4"); larger alpha favours relaying, so
SPT-4 prunes far more aggressively than SPT-2.
"""

from __future__ import annotations

from repro.core.costs import EnergyCost
from repro.core.framework import spt_removable_batch
from repro.protocols.base import ConditionProtocol, register_protocol

__all__ = ["SptProtocol", "Spt2Protocol", "Spt4Protocol"]


class SptProtocol(ConditionProtocol):
    """Minimum-energy / local shortest-path-tree protocol (condition 2).

    Parameters
    ----------
    alpha:
        Path-loss exponent of the energy model ``E = d**alpha``.
    const:
        Constant per-hop energy overhead (0 in the paper's simulation).
    """

    name = "spt"

    def __init__(self, alpha: float = 2.0, const: float = 0.0) -> None:
        super().__init__(EnergyCost(alpha=alpha, const=const))
        self.alpha = float(alpha)

    @property
    def _removable(self):
        return spt_removable_batch

    def __repr__(self) -> str:
        return f"SptProtocol(alpha={self.alpha:g})"


@register_protocol
class Spt2Protocol(SptProtocol):
    """SPT with the free-space exponent (alpha = 2) — the paper's "SPT-2"."""

    name = "spt2"

    def __init__(self) -> None:
        super().__init__(alpha=2.0)


@register_protocol
class Spt4Protocol(SptProtocol):
    """SPT with the two-ray-ground exponent (alpha = 4) — the paper's "SPT-4"."""

    name = "spt4"

    def __init__(self) -> None:
        super().__init__(alpha=4.0)
