"""XTC: order-based topology control (Wattenhofer & Zollinger 2004).

A contemporaneous alternative the paper's framework also covers: XTC
needs no positions at all, only each node's *ranking* of its neighbors by
link quality.  Node u drops neighbor v when some w exists that both u and
v rank better than each other:

    keep (u, v)  iff  no w with  w <_u v  and  w <_v u.

With link quality = Euclidean distance (what Hello positions give us),
XTC's survivors coincide with the RNG's — the interesting property is
*what information suffices*: where RNG needs coordinates, XTC needs only
comparisons, making it robust to noisy localisation.  In this repo the
orders are derived from advertised positions (our views carry them), but
the decision code below touches nothing except the order relation, so a
signal-strength-based order could be dropped in unchanged.
"""

from __future__ import annotations

from repro.core.costs import cost_key
from repro.core.framework import SelectionResult
from repro.core.views import LocalView
from repro.protocols.base import TopologyControlProtocol, register_protocol

__all__ = ["XtcProtocol"]


@register_protocol
class XtcProtocol(TopologyControlProtocol):
    """Order-based topology control (XTC).

    Link-quality order: total order on a node's links by (distance,
    ID pair) — ties broken exactly like the framework's cost keys, so XTC
    inherits the same determinism discipline.
    """

    name = "xtc"

    def select(self, view: LocalView) -> SelectionResult:
        owner = view.owner
        own = view.own_hello
        neighbors = {
            nid: hello
            for nid, hello in view.neighbor_hellos.items()
            if own.distance_to(hello) <= view.normal_range
        }

        def order_key(a: int, b: int) -> tuple:
            """u's ranking key of link (a, b) from the view's positions."""
            return cost_key(view.distance(a, b), a, b)

        survivors: list[int] = []
        max_dist = 0.0
        for v in neighbors:
            keep = True
            key_uv = order_key(owner, v)
            for w in neighbors:
                if w == v:
                    continue
                # w better for u than v, and (as far as u can tell from
                # advertised positions) better for v than u.
                if (
                    order_key(owner, w) < key_uv
                    and view.has_link(v, w)
                    and order_key(v, w) < key_uv
                ):
                    keep = False
                    break
            if keep:
                survivors.append(v)
                max_dist = max(max_dist, own.distance_to(neighbors[v]))
        return SelectionResult(
            owner=owner,
            logical_neighbors=frozenset(survivors),
            actual_range=max_dist,
        )
