"""No topology control: every 1-hop neighbor is logical, range stays normal.

The paper's uncontrolled reference point (250 m range, mean degree ≈ 18 in
the default scenario) against which Table 1 measures the savings.
"""

from __future__ import annotations

from repro.core.framework import SelectionResult
from repro.core.views import LocalView, MultiVersionView
from repro.protocols.base import TopologyControlProtocol, register_protocol

__all__ = ["NoTopologyControl"]


@register_protocol
class NoTopologyControl(TopologyControlProtocol):
    """Identity protocol: keep all 1-hop neighbors at the normal range."""

    name = "none"
    supports_conservative = True

    def select(self, view: LocalView) -> SelectionResult:
        neighbors = frozenset(
            nid
            for nid, hello in view.neighbor_hellos.items()
            if view.own_hello.distance_to(hello) <= view.normal_range
        )
        return SelectionResult(
            owner=view.owner,
            logical_neighbors=neighbors,
            actual_range=view.normal_range if neighbors else 0.0,
        )

    def select_conservative(self, view: MultiVersionView) -> SelectionResult:
        return self.select(view.to_local_view())
