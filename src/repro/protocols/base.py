"""Protocol interface: pure functions from local views to logical neighbors.

A protocol never touches simulator state; it maps a :class:`LocalView`
(or, in conservative mode, a :class:`MultiVersionView`) to a
:class:`SelectionResult`.  This is what lets the same implementations run
unchanged under baseline, view-synchronized, strongly consistent, and
weakly consistent regimes — the paper's whole point is that the base
protocols need no modification (or only this *conservative* evaluation
mode, for weak consistency).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.costs import CostModel, DistanceCost
from repro.core.framework import LocalCostGraph, SelectionResult, apply_removal_condition
from repro.core.views import LocalView, MultiVersionView
from repro.util.errors import ProtocolError

__all__ = ["TopologyControlProtocol", "ConditionProtocol", "register_protocol", "make_protocol", "available_protocols"]

_REGISTRY: dict[str, type["TopologyControlProtocol"]] = {}


def register_protocol(cls: type["TopologyControlProtocol"]) -> type["TopologyControlProtocol"]:
    """Class decorator: register a protocol under its ``name`` attribute."""
    key = cls.name  # type: ignore[attr-defined]
    if key in _REGISTRY:
        raise ProtocolError(f"protocol name {key!r} registered twice")
    _REGISTRY[key] = cls
    return cls


def available_protocols() -> list[str]:
    """Names of all registered protocols."""
    return sorted(_REGISTRY)


def make_protocol(name: str, **kwargs) -> "TopologyControlProtocol":
    """Instantiate a registered protocol by name (CLI / config entry point).

    Composite names join registered names with ``&`` (e.g. ``"rng&spt2"``)
    and build the intersection protocol; keyword arguments are not
    supported for composites (configure constituents by registering them
    or constructing :class:`~repro.protocols.composite.CompositeProtocol`
    directly).
    """
    if "&" in name:
        if kwargs:
            raise ProtocolError("composite protocol names take no kwargs")
        from repro.protocols.composite import CompositeProtocol

        return CompositeProtocol([make_protocol(part) for part in name.split("&")])
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ProtocolError(
            f"unknown protocol {name!r}; available: {available_protocols()}"
        ) from None
    return cls(**kwargs)


class TopologyControlProtocol(ABC):
    """Base class for localized topology control protocols.

    Subclasses set :attr:`name` and implement :meth:`select`.  Protocols
    whose decisions are pure cost comparisons (RNG / SPT / MST / Gabriel)
    also support :meth:`select_conservative` for weak view consistency;
    geometric protocols (Yao, CBTC) fall back to the latest versions and
    say so via :attr:`supports_conservative`.
    """

    #: registry key and report label, e.g. ``"rng"``
    name: str = ""
    #: True if select_conservative implements the enhanced conditions
    supports_conservative: bool = False

    @abstractmethod
    def select(self, view: LocalView) -> SelectionResult:
        """Choose logical neighbors and actual range from a one-version view."""

    def select_conservative(self, view: MultiVersionView) -> SelectionResult:
        """Choose conservatively from a k-version view (enhanced conditions).

        The default raises, because a protocol without cost-comparison
        structure has no sound conservative mode; cost-based subclasses
        override this.
        """
        raise ProtocolError(
            f"protocol {self.name!r} does not support conservative (weak-consistency) mode"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ConditionProtocol(TopologyControlProtocol):
    """Shared machinery for the three link-removal-condition protocols.

    Subclasses provide a cost model and a removal predicate
    ``f(LocalCostGraph, owner_index, neighbor_index) -> bool``; both plain
    and conservative selection then come for free (the predicate reads
    lower bounds for the candidate link and upper bounds for witnesses,
    which coincide on single-version views).
    """

    supports_conservative = True

    def __init__(self, cost_model: CostModel | None = None) -> None:
        self.cost_model = cost_model or DistanceCost()

    @property
    @abstractmethod
    def _removable(self):
        """The removal predicate for this protocol."""

    def select(self, view: LocalView) -> SelectionResult:
        graph = LocalCostGraph.from_local_view(view, self.cost_model)
        return apply_removal_condition(graph, self._removable)

    def select_conservative(self, view: MultiVersionView) -> SelectionResult:
        graph = LocalCostGraph.from_multi_version_view(view, self.cost_model)
        return apply_removal_condition(graph, self._removable)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(cost_model={self.cost_model!r})"
