"""RNG-based topology control (Toussaint 1980; Cartigny et al. 2003).

Link (u, v) is removed when a third node w, visible to both, satisfies
``max(c(u,w), c(w,v)) < c(u,v)`` — removal condition 1 of the paper.
"""

from __future__ import annotations

from repro.core.framework import rng_removable_batch
from repro.protocols.base import ConditionProtocol, register_protocol

__all__ = ["RngProtocol"]


@register_protocol
class RngProtocol(ConditionProtocol):
    """Relative neighborhood graph protocol (removal condition 1).

    Selection runs the batched form (one broadcast witness mask over all
    of the owner's links per decision) — semantics identical to the
    per-edge :func:`repro.core.framework.rng_removable` on both exact and
    interval cost graphs, verified by equivalence tests.
    """

    name = "rng"

    @property
    def _removable(self):
        return rng_removable_batch
