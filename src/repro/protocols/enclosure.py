"""Enclosure (relay-region) topology control — Rodoplu & Meng 1999.

The original minimum-energy construction the paper cites as [24]: node w's
*relay region* with respect to u is the set of positions v where relaying
u→w→v consumes less energy than transmitting u→v directly.  u's
*enclosure* keeps exactly the neighbors not inside any other neighbor's
relay region; the resulting enclosure graph contains every minimum-energy
path.

Relation to :class:`~repro.protocols.spt.SptProtocol`: the SPT protocol
prunes with *multi-hop* witnesses (Li & Halpern's improvement), the
enclosure with 2-hop witnesses only — so the enclosure graph is a
supergraph of the SPT selection, slightly denser and correspondingly more
mobility-robust (a useful point on the redundancy spectrum between SPT
and RNG).
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import EnergyCost, cost_key
from repro.core.framework import LocalCostGraph, apply_removal_condition
from repro.core.views import LocalView, MultiVersionView
from repro.core.framework import SelectionResult
from repro.protocols.base import TopologyControlProtocol, register_protocol
from repro.util.validate import check_non_negative

__all__ = ["EnclosureProtocol", "enclosure_removable"]


def enclosure_removable(graph: LocalCostGraph, owner: int, v: int) -> bool:
    """Remove (owner, v) iff v lies in some neighbor w's relay region.

    I.e. a 2-hop relay is strictly cheaper under the energy cost:
    ``c(u,w) + c(w,v) < c(u,v)`` (conservative form: upper bounds on the
    relay legs, lower bound on the direct link; ID keys break exact ties).
    Unlike the RNG condition this compares a *sum*, and unlike the SPT
    condition it considers only 2-hop paths.
    """
    target = cost_key(graph.cost_low[owner, v], graph.ids[owner], graph.ids[v])
    adj = graph.adj
    for w in np.flatnonzero(adj[owner] & adj[v]):
        if w == v or w == owner:
            continue
        relay = graph.cost_high[owner, w] + graph.cost_high[w, v]
        if cost_key(relay, graph.ids[owner], graph.ids[w]) < target:
            return True
    return False


@register_protocol
class EnclosureProtocol(TopologyControlProtocol):
    """Relay-region / enclosure minimum-energy protocol.

    Parameters
    ----------
    alpha:
        Path-loss exponent of the energy model (Rodoplu & Meng use the
        two-ray value 4 with a constant receiver term).
    receiver_cost:
        Constant per-hop relay overhead ``c`` (makes very short relays
        unattractive, as in the original model).
    """

    name = "enclosure"
    supports_conservative = True

    def __init__(self, alpha: float = 4.0, receiver_cost: float = 0.0) -> None:
        check_non_negative("receiver_cost", receiver_cost)
        self.cost_model = EnergyCost(alpha=alpha, const=receiver_cost)
        self.alpha = float(alpha)
        self.receiver_cost = float(receiver_cost)

    def select(self, view: LocalView) -> SelectionResult:
        graph = LocalCostGraph.from_local_view(view, self.cost_model)
        return apply_removal_condition(graph, enclosure_removable)

    def select_conservative(self, view: MultiVersionView) -> SelectionResult:
        graph = LocalCostGraph.from_multi_version_view(view, self.cost_model)
        return apply_removal_condition(graph, enclosure_removable)

    def __repr__(self) -> str:
        return (
            f"EnclosureProtocol(alpha={self.alpha:g}, "
            f"receiver_cost={self.receiver_cost:g})"
        )
