"""Search-region minimum-energy protocol (Li & Halpern 2001 style).

The paper's future work singles out protocols "using a dynamic search
region [13], [14], [24], [32], where only partial 1-hop information ... is
available".  This implementation follows Li & Halpern's scheme: a node
starts from a small search radius, selects minimum-energy logical
neighbors *among nodes inside the region only*, and grows the region
iteratively until every neighbor outside it is reachable more cheaply
through a selected in-region relay than by direct transmission.  If no
radius short of the normal range achieves coverage the protocol degrades
to the plain SPT selection (full 1-hop information), exactly as Li &
Halpern's algorithm does.

One simplification versus the original: coverage is checked against the
*known* out-of-region neighbors rather than against every geometric
position outside the region (the original's conservative test).  Checking
actual neighbors exercises the identical grow-select-check loop while
staying inside the single-view protocol interface, and it never removes a
link the SPT condition would keep — so connectivity is preserved under the
same premises (Theorem 1 applies through removal condition 2).
"""

from __future__ import annotations

from repro.core.costs import EnergyCost
from repro.core.framework import LocalCostGraph, SelectionResult, apply_removal_condition, spt_removable_batch
from repro.core.views import LocalView
from repro.protocols.base import TopologyControlProtocol, register_protocol
from repro.util.validate import check_positive

__all__ = ["SearchRegionSptProtocol"]


@register_protocol
class SearchRegionSptProtocol(TopologyControlProtocol):
    """Minimum-energy selection with an iteratively grown search region.

    Parameters
    ----------
    alpha:
        Path-loss exponent of the energy model.
    growth_factor:
        Multiplicative region growth per iteration (> 1).

    Notes
    -----
    Compared to :class:`~repro.protocols.spt.SptProtocol`, the selection
    is computed from *partial* 1-hop information whenever a small region
    already covers the neighborhood — the point of the search-region
    family is exactly that the common case needs only nearby nodes.
    :attr:`last_iterations` and :attr:`last_region` expose the cost of the
    final run for overhead studies.
    """

    name = "spt-region"

    def __init__(self, alpha: float = 2.0, growth_factor: float = 2.0) -> None:
        self.cost_model = EnergyCost(alpha=alpha)
        self.alpha = float(alpha)
        if growth_factor <= 1.0:
            raise ValueError(f"growth_factor must exceed 1, got {growth_factor}")
        self.growth_factor = check_positive("growth_factor", growth_factor)
        #: diagnostics of the most recent selection
        self.last_iterations = 0
        self.last_region = 0.0

    def _restricted_selection(
        self, view: LocalView, region: float
    ) -> SelectionResult:
        """SPT selection using only neighbors inside *region*."""
        inside = {
            nid: h
            for nid, h in view.neighbor_hellos.items()
            if view.own_hello.distance_to(h) <= region
        }
        sub_view = LocalView(
            owner=view.owner,
            own_hello=view.own_hello,
            neighbor_hellos=inside,
            normal_range=view.normal_range,
            sampled_at=view.sampled_at,
        )
        graph = LocalCostGraph.from_local_view(sub_view, self.cost_model)
        return apply_removal_condition(graph, spt_removable_batch)

    def _covers(self, view: LocalView, selected: frozenset[int], region: float) -> bool:
        """True iff every known neighbor beyond *region* has a cheaper relay."""
        own = view.own_hello
        for nid, hello in view.neighbor_hellos.items():
            d_direct = own.distance_to(hello)
            if d_direct <= region:
                continue
            direct_cost = float(self.cost_model.from_distance(d_direct))
            covered = False
            for w in selected:
                w_hello = view.neighbor_hellos[w]
                relay = float(
                    self.cost_model.from_distance(own.distance_to(w_hello))
                ) + float(self.cost_model.from_distance(w_hello.distance_to(hello)))
                if relay < direct_cost:
                    covered = True
                    break
            if not covered:
                return False
        return True

    def select(self, view: LocalView) -> SelectionResult:
        own = view.own_hello
        distances = sorted(
            own.distance_to(h) for h in view.neighbor_hellos.values()
        )
        if not distances:
            self.last_iterations, self.last_region = 0, 0.0
            return SelectionResult(
                owner=view.owner, logical_neighbors=frozenset(), actual_range=0.0
            )
        region = max(distances[0], 1e-9)
        iterations = 0
        while True:
            iterations += 1
            result = self._restricted_selection(view, region)
            if region >= view.normal_range or (
                result.logical_neighbors
                and self._covers(view, result.logical_neighbors, region)
            ):
                self.last_iterations = iterations
                self.last_region = min(region, view.normal_range)
                return result
            region = min(region * self.growth_factor, view.normal_range)

    def __repr__(self) -> str:
        return (
            f"SearchRegionSptProtocol(alpha={self.alpha:g}, "
            f"growth_factor={self.growth_factor:g})"
        )
