"""Gabriel-graph topology control (Gabriel & Sokal 1969).

A special case of the RNG family where the witness must lie inside the
disk with diameter (u, v):  remove (u, v) iff some visible w satisfies
``d(u,w)^2 + d(w,v)^2 < d(u,v)^2``.  The Gabriel graph contains the RNG,
so it keeps slightly more links (useful as a redundancy ablation point
between RNG and SPT-2).
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import cost_key
from repro.core.framework import LocalCostGraph
from repro.protocols.base import ConditionProtocol, register_protocol

__all__ = ["GabrielProtocol", "gabriel_removable"]


def gabriel_removable(graph: LocalCostGraph, owner: int, v: int) -> bool:
    """Remove (owner, v) iff a diametral-disk witness path is strictly cheaper.

    Conservative form: the witness legs use upper-bound distances, the
    candidate link its lower bound, with ID tie-breaking on exact equality
    (same total-order discipline as the three framework conditions).
    """
    d_low = graph.dist_low[owner, v]
    target = cost_key(d_low * d_low, graph.ids[owner], graph.ids[v])
    adj = graph.adj
    for w in np.flatnonzero(adj[owner] & adj[v]):
        if w == v or w == owner:
            continue
        a = graph.dist_high[owner, w]
        b = graph.dist_high[w, v]
        if cost_key(a * a + b * b, graph.ids[owner], graph.ids[w]) < target:
            return True
    return False


@register_protocol
class GabrielProtocol(ConditionProtocol):
    """Gabriel-graph protocol (diametral-disk witness removal)."""

    name = "gabriel"

    @property
    def _removable(self):
        return gabriel_removable
