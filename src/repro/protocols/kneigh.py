"""K-Neigh probabilistic topology control (Blough, Leoncini, Resta &
Santi 2003).

Each node keeps its ``k`` nearest 1-hop neighbors and sets its range to
reach the k-th.  Connectivity is only probabilistic (the paper cites
95 % with k = 9); it serves as the uniform-degree baseline the paper
compares its adaptive mechanisms against.
"""

from __future__ import annotations

import numpy as np

from repro.core.framework import SelectionResult
from repro.core.views import LocalView
from repro.protocols.base import TopologyControlProtocol, register_protocol
from repro.util.validate import check_int_range

__all__ = ["KNeighProtocol"]


@register_protocol
class KNeighProtocol(TopologyControlProtocol):
    """Keep the k nearest neighbors (K-Neigh baseline).

    Parameters
    ----------
    k:
        Target neighbor count (Blough et al. recommend 9 for n ≈ 100).
    """

    name = "kneigh"

    def __init__(self, k: int = 9) -> None:
        check_int_range("k", k, 1)
        self.k = k

    def select(self, view: LocalView) -> SelectionResult:
        own = np.asarray(view.own_hello.position, dtype=np.float64)
        records: list[tuple[float, int]] = []
        for nid, hello in view.neighbor_hellos.items():
            pos = np.asarray(hello.position, dtype=np.float64)
            d = float(np.hypot(*(pos - own)))
            if d <= view.normal_range:
                records.append((d, nid))
        records.sort()
        kept = records[: self.k]
        return SelectionResult(
            owner=view.owner,
            logical_neighbors=frozenset(nid for _, nid in kept),
            actual_range=max((d for d, _ in kept), default=0.0),
        )

    def __repr__(self) -> str:
        return f"KNeighProtocol(k={self.k})"
