"""Composite topology control: apply several removal conditions at once.

Section 2.1 closes with "the above schemes can be combined or enhanced to
achieve multiple desirable properties".  This module realises the
combination: a link survives only if it survives *every* constituent
protocol — equivalently, it is removed when any constituent's removal
condition fires.

Why this is still connectivity-safe: every constituent condition (1, 2,
3, Gabriel, enclosure) only removes a link when a witness path of
*strictly cheaper links* exists — for sum-based conditions each leg of the
witness is individually cheaper than the removed link, because costs are
positive.  Theorem 1's descending-order removal argument therefore goes
through for the union of removals, provided all constituents rank links
consistently; since every cost model is strictly increasing in distance,
the distance order is that common ranking.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.framework import SelectionResult
from repro.core.views import LocalView, MultiVersionView
from repro.protocols.base import TopologyControlProtocol
from repro.util.errors import ProtocolError

__all__ = ["CompositeProtocol"]


class CompositeProtocol(TopologyControlProtocol):
    """Intersection of several protocols' logical neighbor selections.

    Parameters
    ----------
    protocols:
        Constituent protocols (at least one).  The composite supports
        conservative (weak-consistency) mode iff all constituents do.

    Examples
    --------
    >>> from repro.protocols import RngProtocol, Spt2Protocol
    >>> combo = CompositeProtocol([RngProtocol(), Spt2Protocol()])
    >>> combo.name
    'rng&spt2'
    """

    def __init__(self, protocols: Sequence[TopologyControlProtocol]) -> None:
        if not protocols:
            raise ProtocolError("CompositeProtocol needs at least one constituent")
        self.protocols = list(protocols)
        self.name = "&".join(p.name for p in self.protocols)
        self.supports_conservative = all(
            p.supports_conservative for p in self.protocols
        )

    @staticmethod
    def _survivors(results: list[SelectionResult]) -> frozenset[int]:
        return frozenset.intersection(*(r.logical_neighbors for r in results))

    def select(self, view: LocalView) -> SelectionResult:
        survivors = self._survivors([p.select(view) for p in self.protocols])
        actual = max(
            (view.own_hello.distance_to(view.hello_of(v)) for v in survivors),
            default=0.0,
        )
        return SelectionResult(
            owner=view.owner, logical_neighbors=survivors, actual_range=actual
        )

    def select_conservative(self, view: MultiVersionView) -> SelectionResult:
        if not self.supports_conservative:
            return super().select_conservative(view)  # raises ProtocolError
        survivors = self._survivors(
            [p.select_conservative(view) for p in self.protocols]
        )
        # Conservative coverage: the farthest retained position pair.
        actual = 0.0
        for v in survivors:
            for own_h in view.hellos_of(view.owner):
                for nbr_h in view.hellos_of(v):
                    actual = max(actual, own_h.distance_to(nbr_h))
        return SelectionResult(
            owner=view.owner, logical_neighbors=survivors, actual_range=actual
        )

    def __repr__(self) -> str:
        return f"CompositeProtocol({self.protocols!r})"
