"""LMST: local-MST-based topology control (Li, Hou & Sha 2003).

Each node builds an MST over its 1-hop view and keeps its tree neighbors.
Because link costs are totally ordered (IDs break ties), this is exactly
removal condition 3: drop (u, v) iff some u→v path exists whose *every*
link is cheaper — i.e. the direct link is not the bottleneck-optimal
connection.  The paper notes LMST yields the sparsest (near-tree, mean
degree ≈ 2.09) and therefore most mobility-fragile logical topology.
"""

from __future__ import annotations

from repro.core.framework import mst_removable_batch
from repro.protocols.base import ConditionProtocol, register_protocol

__all__ = ["MstProtocol"]


@register_protocol
class MstProtocol(ConditionProtocol):
    """Local minimum-spanning-tree protocol (removal condition 3).

    Selection runs the batched form (one Prim pass per decision on
    single-version views; per-edge bottleneck reachability on interval
    views) — semantics identical to :func:`repro.core.framework
    .mst_removable`, verified by equivalence tests.
    """

    name = "mst"

    @property
    def _removable(self):
        return mst_removable_batch
