"""Cone-based topology control, CBTC (Li, Halpern, Bahl, Wang &
Wattenhofer 2001; Wattenhofer et al. 2001).

A node grows its neighbor set outward (nearest first — the localized
analogue of growing the broadcast search radius) until every angular gap
between the directions of chosen neighbors is at most ``alpha``, or its
1-hop neighborhood is exhausted.  ``alpha <= 5*pi/6`` preserves
connectivity; ``alpha <= 2*pi/3`` keeps the symmetric subgraph connected.
The optional *shrink-back* optimization then discards any neighbor whose
removal leaves the cone coverage intact, scanning farthest-first.

CBTC needs only *direction* information, so it has no cost-comparison
structure and therefore no conservative (weak-consistency) mode; the
paper's strong-consistency and buffer-zone mechanisms still apply to it.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.framework import SelectionResult
from repro.core.views import LocalView
from repro.geometry.cones import covers_with_alpha
from repro.protocols.base import TopologyControlProtocol, register_protocol
from repro.util.errors import ConfigurationError

__all__ = ["CbtcProtocol"]


@register_protocol
class CbtcProtocol(TopologyControlProtocol):
    """Cone-based topology control.

    Parameters
    ----------
    alpha:
        Maximum tolerated angular gap, radians, in (0, 2*pi].  Defaults to
        2*pi/3, the symmetric-connectivity threshold.
    shrink_back:
        Apply the shrink-back optimization after the growth phase.
    """

    name = "cbtc"

    def __init__(self, alpha: float = 2.0 * math.pi / 3.0, shrink_back: bool = True) -> None:
        if not (0.0 < alpha <= 2.0 * math.pi):
            raise ConfigurationError(f"alpha must be in (0, 2*pi], got {alpha}")
        self.alpha = float(alpha)
        self.shrink_back = bool(shrink_back)

    @classmethod
    def for_k_connectivity(cls, k: int, shrink_back: bool = True) -> "CbtcProtocol":
        """CBTC tuned for k-connectivity (Bahramgiri et al. 2002).

        Their fault-tolerant extension proves the cone angle
        ``alpha = 2*pi/(3k)`` yields a k-connected topology whenever the
        unit-disk graph at the normal range is k-connected.
        """
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        return cls(alpha=2.0 * math.pi / (3.0 * k), shrink_back=shrink_back)

    def select(self, view: LocalView) -> SelectionResult:
        own = np.asarray(view.own_hello.position, dtype=np.float64)
        records: list[tuple[float, int, float]] = []  # (distance, id, angle)
        for nid, hello in view.neighbor_hellos.items():
            pos = np.asarray(hello.position, dtype=np.float64)
            d = float(np.hypot(*(pos - own)))
            if d > view.normal_range:
                continue
            records.append((d, nid, math.atan2(pos[1] - own[1], pos[0] - own[0])))
        records.sort()

        chosen: list[tuple[float, int, float]] = []
        for rec in records:
            chosen.append(rec)
            if covers_with_alpha([r[2] for r in chosen], self.alpha):
                break

        if self.shrink_back and len(chosen) > 1:
            # Drop farthest-first any neighbor not needed for coverage.
            for rec in sorted(chosen, reverse=True):
                trial = [r for r in chosen if r is not rec]
                if trial and covers_with_alpha([r[2] for r in trial], self.alpha):
                    chosen = trial

        ids = frozenset(r[1] for r in chosen)
        max_dist = max((r[0] for r in chosen), default=0.0)
        return SelectionResult(
            owner=view.owner, logical_neighbors=ids, actual_range=max_dist
        )

    def __repr__(self) -> str:
        return f"CbtcProtocol(alpha={self.alpha:.4f}, shrink_back={self.shrink_back})"
