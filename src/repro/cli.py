"""Command-line entry point: regenerate the paper's tables and figures.

Examples
--------
Run everything at the quick (CI) scale::

    python -m repro.cli all --scale quick

Regenerate Fig. 9 at the paper's full scale and save CSV::

    python -m repro.cli fig9 --scale paper --csv fig9.csv

Run one custom configuration::

    python -m repro.cli run --protocol rng --mechanism view-sync \
        --buffer 10 --speed 40 --repetitions 5
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.experiment import ExperimentSpec, run_repetitions
from repro.analysis.figures import (
    generate_fig6,
    generate_fig7,
    generate_fig8,
    generate_fig9,
    generate_fig10,
)
from repro.analysis.overhead_study import generate_overhead_study
from repro.analysis.plotting import figure_chart
from repro.analysis.report import format_kv, write_csv
from repro.analysis.scales import PAPER, QUICK, SMOKE, STANDARD, Scale
from repro.analysis.tables import generate_table1
from repro.core.consistency import available_mechanisms
from repro.protocols import available_protocols
from repro.sim.propagation import available_propagation_models

__all__ = ["main", "build_parser"]

_SCALES: dict[str, Scale] = {
    "paper": PAPER,
    "standard": STANDARD,
    "quick": QUICK,
    "smoke": SMOKE,
}

_FIGURES = {
    "table1": lambda scale, seed, workers: [
        generate_table1(scale, base_seed=seed, workers=workers)
    ],
    "fig6": lambda scale, seed, workers: [
        generate_fig6(scale, base_seed=seed, workers=workers)
    ],
    "fig7": lambda scale, seed, workers: [
        generate_fig7(scale, base_seed=seed, workers=workers)
    ],
    "fig8": lambda scale, seed, workers: list(
        generate_fig8(scale, base_seed=seed, workers=workers)
    ),
    "fig9": lambda scale, seed, workers: [
        generate_fig9(scale, base_seed=seed, workers=workers)
    ],
    "fig10": lambda scale, seed, workers: [
        generate_fig10(scale, base_seed=seed, workers=workers)
    ],
    "overhead": lambda scale, seed, workers: [
        generate_overhead_study(scale, base_seed=seed, workers=workers)
    ],
}


def _orchestration_parent() -> argparse.ArgumentParser:
    """The shared execution/orchestration flags, as an argparse parent.

    One definition serves every campaign-running verb (run, figures,
    all, report, equivalence, fuzz, serve, submit), so flag names, types,
    defaults, and help text cannot drift between commands.
    """
    from repro.orchestrator.backend import available_backends

    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes for repetition fan-out (default: REPRO_WORKERS env "
        "var, else 1); results are identical at any worker count",
    )
    parent.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="execution backend: inprocess (synchronous), local "
        "(fault-contained worker pool; default), queue (work-stealing "
        "worker processes over the shared --store)",
    )
    parent.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="checkpoint every work unit into this SQLite run store "
        "(created if missing); inspect it with `repro runs`",
    )
    parent.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="skip units already completed in --store (default: on); "
        "--no-resume re-executes everything, idempotently overwriting",
    )
    parent.add_argument(
        "--retries",
        type=int,
        default=1,
        help="extra attempts per failing unit before quarantining it "
        "(default: 1)",
    )
    parent.add_argument(
        "--unit-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-unit wall-clock bound, enforced inside worker processes",
    )
    parent.add_argument(
        "--max-units",
        type=int,
        default=None,
        help="execute at most this many fresh units, then stop with exit "
        "code 3 (completed work is checkpointed; rerun to continue)",
    )
    return parent


def _add_telemetry_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="trace every run: write a repro-telemetry/1 JSONL stream to "
        "PATH, print the metrics/spans summary table, and write per-phase "
        "timings to PATH's .phases.json sibling (works at any --workers "
        "count; at >1 workers the per-event stream holds parent-side "
        "events only, while counters/spans/event totals merge exactly)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The repro-experiment argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Reproduce Wu & Dai, mobility-sensitive topology control.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    orchestration = _orchestration_parent()

    for name in [*_FIGURES, "all"]:
        p = sub.add_parser(
            name,
            help=f"regenerate {name}" if name != "all" else "everything",
            parents=[orchestration],
        )
        p.add_argument("--scale", choices=sorted(_SCALES), default="quick")
        p.add_argument("--seed", type=int, default=2026)
        p.add_argument("--csv", help="write result rows to this CSV file")
        p.add_argument(
            "--no-chart", dest="chart", action="store_false",
            help="suppress the ASCII chart rendering",
        )
        _add_telemetry_flag(p)

    p = sub.add_parser(
        "report",
        help="run the full campaign and write EXPERIMENTS.md",
        parents=[orchestration],
    )
    p.add_argument("--scale", choices=sorted(_SCALES), default="quick")
    p.add_argument("--seed", type=int, default=2026)
    p.add_argument("--output", default="EXPERIMENTS.md")
    p.add_argument("--html", help="also write a standalone HTML report here")
    _add_telemetry_flag(p)

    p = sub.add_parser("unicast", help="GFG/GPSR unicast over maintained topologies")
    p.add_argument("--scale", choices=sorted(_SCALES), default="quick")
    p.add_argument("--seed", type=int, default=2026)
    p.add_argument("--speed", type=float, default=20.0)

    p = sub.add_parser("lifetime", help="network-lifetime study per protocol")
    p.add_argument("--scale", choices=sorted(_SCALES), default="quick")
    p.add_argument("--seed", type=int, default=2026)
    p.add_argument("--budget", type=float, default=5e6)

    p = sub.add_parser(
        "equivalence",
        help="speed-range equivalence study (Sec. 5.1)",
        parents=[orchestration],
    )
    p.add_argument("--scale", choices=sorted(_SCALES), default="quick")
    p.add_argument("--seed", type=int, default=2026)
    _add_telemetry_flag(p)

    p = sub.add_parser(
        "fuzz",
        help="differential fault-injection fuzzing against the paper's theorems",
        parents=[orchestration],
    )
    p.add_argument("--runs", type=int, default=25, help="random cases to execute")
    p.add_argument("--seed", type=int, default=0, help="campaign seed (case i is a pure function of (seed, i))")
    p.add_argument(
        "--deep", action="store_true",
        help="audit invariants after every simulation event, not just at samples",
    )
    p.add_argument(
        "--no-differential", dest="differential", action="store_false",
        help="skip the decision-cache-disabled twin runs",
    )
    p.add_argument(
        "--no-shrink", dest="shrink", action="store_false",
        help="report failures without minimizing their fault schedules",
    )
    p.add_argument(
        "--mechanism", action="append", dest="mechanisms", metavar="NAME",
        choices=available_mechanisms(),
        help="restrict to this mechanism (repeatable; default: all shipped)",
    )
    p.add_argument(
        "--propagation", action="append", dest="propagations", metavar="NAME",
        choices=sorted(available_propagation_models()),
        help="restrict the propagation axis to this model (repeatable; "
        "default: weighted sample of all shipped models)",
    )
    p.add_argument(
        "--out-dir", default=None,
        help="write shrunk failing cases as JSON repros into this directory",
    )

    p = sub.add_parser("runs", help="inspect and export a run store")
    runs_sub = p.add_subparsers(dest="runs_command", required=True)
    p_list = runs_sub.add_parser("list", help="list stored work units")
    p_list.add_argument("--store", required=True, metavar="PATH")
    p_list.add_argument(
        "--status", choices=["pending", "done", "quarantined"], default=None,
        help="only units in this state",
    )
    p_list.add_argument(
        "--kind", default=None, help="only units of this kind (run | fuzz)"
    )
    p_show = runs_sub.add_parser("show", help="show one unit in full")
    p_show.add_argument("--store", required=True, metavar="PATH")
    p_show.add_argument("unit_id", help="unit ID (or unique prefix >= 6 chars)")
    p_export = runs_sub.add_parser(
        "export", help="export the store as JSONL and/or CSV"
    )
    p_export.add_argument("--store", required=True, metavar="PATH")
    p_export.add_argument("--jsonl", metavar="PATH", default=None)
    p_export.add_argument("--csv", metavar="PATH", default=None)

    p = sub.add_parser(
        "run", help="run one custom configuration", parents=[orchestration]
    )
    p.add_argument("--protocol", choices=available_protocols(), default="rng")
    p.add_argument(
        "--mechanism",
        choices=available_mechanisms(),
        default="baseline",
    )
    p.add_argument("--buffer", type=float, default=0.0, help="buffer width, m")
    p.add_argument("--speed", type=float, default=20.0, help="mean speed, m/s")
    p.add_argument("--pn", action="store_true", help="physical-neighbor mode")
    p.add_argument("--nodes", type=int, default=100)
    p.add_argument("--duration", type=float, default=100.0)
    p.add_argument("--sample-rate", type=float, default=10.0)
    p.add_argument("--repetitions", type=int, default=5)
    p.add_argument("--seed", type=int, default=2026)
    p.add_argument(
        "--propagation",
        choices=sorted(available_propagation_models()),
        default="unit-disk",
        help="reachability model (see docs/PROPAGATION.md)",
    )
    p.add_argument(
        "--propagation-param",
        action="append",
        dest="propagation_params",
        metavar="KEY=VALUE",
        default=None,
        help="propagation-model constructor parameter, repeatable "
        "(e.g. --propagation-param sigma_db=6)",
    )
    _add_telemetry_flag(p)

    p = sub.add_parser(
        "serve",
        help="run the HTTP experiment service",
        parents=[orchestration],
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument(
        "--data-dir", default=None,
        help="directory holding one run-store database per campaign "
        "(default: a fresh temporary directory)",
    )

    p = sub.add_parser(
        "submit",
        help="submit a sweep campaign to a running experiment service",
        parents=[orchestration],
    )
    p.add_argument(
        "--url", default="http://127.0.0.1:8642",
        help="service base URL (see `repro serve`)",
    )
    p.add_argument("--scale", choices=sorted(_SCALES), default="quick")
    p.add_argument(
        "--speeds", default=None,
        help="comma-separated mean speeds (m/s) to sweep "
        "(default: the scale's speed axis)",
    )
    p.add_argument("--protocol", choices=available_protocols(), default="rng")
    p.add_argument(
        "--mechanism",
        choices=available_mechanisms(),
        default="baseline",
    )
    p.add_argument("--buffer", type=float, default=0.0, help="buffer width, m")
    p.add_argument("--repetitions", type=int, default=None,
                   help="seeds per speed (default: the scale's repetitions)")
    p.add_argument("--seed", type=int, default=2026)
    p.add_argument(
        "--wait", action=argparse.BooleanOptionalAction, default=True,
        help="poll until the campaign finishes (default: on)",
    )
    p.add_argument(
        "--export", metavar="PATH", default=None,
        help="after completion, write the campaign's deterministic "
        "run-store JSONL export here",
    )
    p.add_argument(
        "--events", type=int, default=0, metavar="N",
        help="tail up to N live telemetry JSONL lines while waiting",
    )
    return parser


def _with_telemetry(args: argparse.Namespace, fn) -> int:
    """Run *fn* with an ambient collector armed when ``--telemetry`` asks.

    The collector reaches every :func:`~repro.analysis.experiment.run_once`
    through the :func:`~repro.telemetry.use_telemetry` context variable, so
    figure generators and campaigns need no parameter threading.  At more
    than one worker, each repetition is traced by a process-local collector
    whose frozen summary is absorbed back into this one (see
    :meth:`repro.telemetry.Telemetry.absorb`) — counters, spans, and event
    totals merge exactly; only the per-event stream is parent-side.
    """
    path = getattr(args, "telemetry", None)
    if not path:
        return fn()
    from repro.telemetry import (
        Telemetry,
        summary_table,
        use_telemetry,
        write_jsonl,
        write_phase_timings,
    )

    if getattr(args, "workers", None) not in (None, 1):
        print(
            "[telemetry] multi-worker run: per-event JSONL records cover "
            "parent-side events only; counters/spans/event totals are exact"
        )
    telemetry = Telemetry()
    with use_telemetry(telemetry):
        code = fn()
    meta = {"command": args.command, "seed": getattr(args, "seed", None)}
    records = write_jsonl(path, telemetry, meta=meta)
    print()
    print(summary_table(telemetry, title=f"telemetry — {args.command}"))
    phases_path = f"{path}.phases.json"
    write_phase_timings(phases_path, telemetry, meta=meta)
    print(f"\nwrote {records} telemetry records to {path}")
    print(f"wrote phase timings to {phases_path}")
    return code


def _with_orchestrator(args: argparse.Namespace, fn) -> int:
    """Run *fn* under an armed :class:`OrchestrationContext` when asked.

    Armed by any of ``--store``, ``--backend``, ``--max-units``,
    ``--unit-timeout``, or a non-default ``--retries``; otherwise *fn*
    runs on the plain in-memory fan-out path.  Sweeps reach the context ambiently through
    :func:`repro.orchestrator.use_orchestrator`, so figure generators and
    campaigns need no parameter threading.  Exit code 3 means the unit
    budget was exhausted (work so far is checkpointed; rerun to continue).
    """
    store_path = getattr(args, "store", None)
    armed = (
        store_path is not None
        or getattr(args, "backend", None) is not None
        or getattr(args, "max_units", None) is not None
        or getattr(args, "unit_timeout", None) is not None
        or getattr(args, "retries", 1) != 1
    )
    if not armed:
        return fn()
    from repro.analysis.experiment import default_workers
    from repro.orchestrator import OrchestrationContext, RunStore
    from repro.orchestrator.runner import CampaignInterrupted

    workers = getattr(args, "workers", None)
    if workers is None:
        workers = default_workers()
    store = RunStore(store_path) if store_path else None
    context = OrchestrationContext(
        store=store,
        workers=max(1, workers),
        retries=getattr(args, "retries", 1),
        unit_timeout=getattr(args, "unit_timeout", None),
        resume=getattr(args, "resume", True),
        max_units=getattr(args, "max_units", None),
        backend=getattr(args, "backend", None),
    )
    try:
        with context:
            code = fn()
        print(f"\n[orchestrator] {context.summary_line()}")
        for quarantined in context.quarantined:
            print(f"[orchestrator] quarantined: {quarantined}")
        return code
    except CampaignInterrupted as exc:
        print(f"\n[orchestrator] interrupted: {exc}")
        print(f"[orchestrator] {context.summary_line()}")
        return 3
    finally:
        if store is not None:
            store.close()


def _run_runs(args: argparse.Namespace) -> int:
    import json as _json

    from repro.analysis.report import format_table
    from repro.orchestrator import RunStore

    with RunStore(args.store) as store:
        if args.runs_command == "list":
            rows = [
                {
                    "unit": row.unit_id[:12],
                    "kind": row.kind,
                    "label": row.label,
                    "seed": row.seed,
                    "status": row.status,
                    "attempts": row.attempts,
                    "updated": row.updated_at,
                }
                for row in store.units(status=args.status, kind=args.kind)
            ]
            if rows:
                print(format_table(rows, title=f"run store — {args.store}"))
            tally = store.counts()
            print(
                "\n" + ", ".join(f"{n} {s}" for s, n in tally.items())
                + f" ({sum(tally.values())} total)"
            )
            return 0
        if args.runs_command == "show":
            row = store.get(args.unit_id)
            if row is None:
                print(f"no unit matches {args.unit_id!r} in {args.store}")
                return 1
            print(_json.dumps(row.as_dict(), indent=2, sort_keys=True))
            return 0
        # export
        if not args.jsonl and not args.csv:
            print("runs export: pass --jsonl PATH and/or --csv PATH")
            return 2
        if args.jsonl:
            lines = store.export_jsonl(args.jsonl)
            print(f"wrote {lines} JSONL records to {args.jsonl}")
        if args.csv:
            rows_written = store.export_csv(args.csv)
            print(f"wrote {rows_written} CSV rows to {args.csv}")
        return 0


def _run_figures(args: argparse.Namespace) -> int:
    names = list(_FIGURES) if args.command == "all" else [args.command]
    scale = _SCALES[args.scale]
    all_rows = []
    for name in names:
        t0 = time.perf_counter()
        for result in _FIGURES[name](scale, args.seed, args.workers):
            print(result.format())
            print()
            if getattr(result, "series", None) and getattr(args, "chart", True):
                print(figure_chart(result))
                print()
            rows = result.rows()
            tag = getattr(result, "figure_id", name)
            for row in rows:
                all_rows.append({"artifact": tag, **row})
        print(f"[{name} done in {time.perf_counter() - t0:.1f}s]\n")
    if args.csv and all_rows:
        write_csv(args.csv, all_rows)
        print(f"wrote {len(all_rows)} rows to {args.csv}")
    return 0


def _parse_propagation_params(pairs: list[str] | None) -> dict:
    """Parse repeated ``KEY=VALUE`` flags into constructor kwargs."""
    params: dict = {}
    for pair in pairs or ():
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"--propagation-param expects KEY=VALUE, got {pair!r}"
            )
        try:
            params[key] = float(value)
        except ValueError:
            raise SystemExit(
                f"--propagation-param {key} expects a number, got {value!r}"
            ) from None
    return params


def _run_single(args: argparse.Namespace) -> int:
    scale_cfg = Scale(
        name="custom",
        n_nodes=args.nodes,
        duration=args.duration,
        sample_rate=args.sample_rate,
        repetitions=args.repetitions,
    )
    spec = ExperimentSpec(
        protocol=args.protocol,
        mechanism=args.mechanism,
        buffer_width=args.buffer,
        physical_neighbor_mode=args.pn,
        mean_speed=args.speed,
        config=scale_cfg.config(
            propagation=args.propagation,
            propagation_params=_parse_propagation_params(args.propagation_params),
        ),
    )
    t0 = time.perf_counter()
    agg = run_repetitions(
        spec,
        repetitions=args.repetitions,
        base_seed=args.seed,
        workers=args.workers,
    )
    elapsed = time.perf_counter() - t0
    print(format_kv(
        {
            "configuration": spec.describe(),
            "connectivity": str(agg.connectivity),
            "strict connectivity": str(agg.strict_connectivity),
            "tx range (m)": str(agg.transmission_range),
            "logical degree": str(agg.logical_degree),
            "physical degree": str(agg.physical_degree),
            "repetitions": agg.n_repetitions,
            "wall clock (s)": f"{elapsed:.1f}",
        },
        title="single-configuration run",
    ))
    return 0


def _run_report(args: argparse.Namespace) -> int:
    from repro.analysis.campaign import render_experiments_md, run_campaign

    result = run_campaign(
        _SCALES[args.scale], base_seed=args.seed, workers=args.workers
    )
    text = render_experiments_md(result)
    with open(args.output, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(text)
    print(f"\nwrote {args.output} ({result.wall_clock_s:.0f}s of simulation)")
    if getattr(args, "html", None):
        from repro.analysis.html_report import write_html_report

        write_html_report(result, args.html)
        print(f"wrote {args.html}")
    return 0


def _run_unicast(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.analysis.routing_study import run_unicast_study

    scale = _SCALES[args.scale]
    cfg = scale.config()
    rows = []
    for protocol, mechanism, buffer_width in [
        ("rng", "baseline", 0.0),
        ("rng", "view-sync", 30.0),
        ("gabriel", "view-sync", 30.0),
        ("none", "baseline", 0.0),
    ]:
        spec = ExperimentSpec(
            protocol=protocol, mechanism=mechanism, buffer_width=buffer_width,
            mean_speed=args.speed, config=cfg,
        )
        rows.append(run_unicast_study(spec, seed=args.seed).row())
    print(format_table(rows, title=f"GFG/GPSR unicast at {args.speed:g} m/s"))
    return 0


def _run_lifetime(args: argparse.Namespace) -> int:
    from repro.analysis.lifetime_study import run_lifetime_study
    from repro.analysis.report import format_table

    scale = _SCALES[args.scale]
    cfg = scale.config()
    rows = []
    for protocol in ("mst", "rng", "spt2", "none"):
        spec = ExperimentSpec(
            protocol=protocol, mechanism="view-sync", buffer_width=10.0,
            mean_speed=10.0, config=cfg,
        )
        rows.append(
            run_lifetime_study(spec, budget=args.budget, seed=args.seed).row()
        )
    print(format_table(rows, title=f"Network lifetime (budget {args.budget:g})"))
    return 0


def _run_equivalence(args: argparse.Namespace) -> int:
    from repro.analysis.equivalence import generate_equivalence_study
    from repro.analysis.report import format_table

    points = generate_equivalence_study(
        _SCALES[args.scale], base_seed=args.seed, workers=args.workers
    )
    print(
        format_table(
            [p.row() for p in points],
            title="Speed-range equivalence (constant v/R => constant connectivity)",
        )
    )
    return 0


def _run_fuzz(args: argparse.Namespace) -> int:
    from repro.faults.fuzz import MECHANISMS, PROPAGATIONS, fuzz

    mechanisms = tuple(args.mechanisms) if args.mechanisms else MECHANISMS
    propagations = tuple(args.propagations) if args.propagations else PROPAGATIONS
    t0 = time.perf_counter()

    def progress(i, case, result):
        mark = "FAIL" if result.failed else "ok"
        print(f"[{i + 1:>3}/{args.runs}] {mark:<4} {case.describe()}")

    for flag in ("workers", "backend", "unit_timeout"):
        if getattr(args, flag, None) not in (None, 1):
            print(
                f"[fuzz] note: --{flag.replace('_', '-')} does not apply — "
                "fuzz cases run sequentially in-process (case i must see "
                "case i's exact RNG stream)"
            )
    store = None
    if args.store:
        from repro.orchestrator import RunStore

        store = RunStore(args.store)
    from repro.orchestrator.runner import CampaignInterrupted

    try:
        report = fuzz(
            runs=args.runs,
            seed=args.seed,
            deep=args.deep,
            differential=args.differential,
            mechanisms=mechanisms,
            propagations=propagations,
            shrink=args.shrink,
            out_dir=args.out_dir,
            progress=progress,
            store=store,
            resume=args.resume,
            max_fresh=args.max_units,
        )
    except CampaignInterrupted as exc:
        print(f"\n[fuzz] interrupted: {exc}")
        return 3
    finally:
        if store is not None:
            tally = store.counts()
            print(
                "[store] " + ", ".join(f"{n} {s}" for s, n in tally.items())
            )
            store.close()
    elapsed = time.perf_counter() - t0
    print(f"\n{report.runs} cases, {len(report.failures)} failing, {elapsed:.1f}s")
    for result in report.failures:
        print(f"\n{result.case.describe()} "
              f"(shrunk to {len(result.case.schedule)} fault events)")
        for finding in result.findings:
            print(f"  {finding}")
    for path in report.saved:
        print(f"repro written: {path}")
    return 0 if report.ok else 1


def _run_serve(args: argparse.Namespace) -> int:
    from repro.service import ExperimentService
    from repro.service.server import run_service

    if args.store:
        print(
            "[serve] note: --store is ignored — each campaign gets its own "
            "run store under --data-dir"
        )
    service = ExperimentService(
        data_dir=args.data_dir,
        default_backend=args.backend or "local",
        default_workers=max(1, args.workers or 1),
    )
    return run_service(service, host=args.host, port=args.port)


def _run_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    scale = _SCALES[args.scale]
    speeds = (
        [float(v) for v in args.speeds.split(",") if v.strip()]
        if args.speeds
        else list(scale.speeds)
    )
    cfg = scale.config()
    specs = [
        ExperimentSpec(
            protocol=args.protocol,
            mechanism=args.mechanism,
            buffer_width=args.buffer,
            mean_speed=speed,
            config=cfg,
        ).as_dict()
        for speed in speeds
    ]
    document = {
        "specs": specs,
        "repetitions": args.repetitions or scale.repetitions,
        "base_seed": args.seed,
        "resume": args.resume,
    }
    if args.backend:
        document["backend"] = args.backend
    if args.workers:
        document["workers"] = args.workers
    if args.retries != 1:
        document["retries"] = args.retries
    if args.unit_timeout is not None:
        document["unit_timeout"] = args.unit_timeout
    if args.max_units is not None:
        document["max_units"] = args.max_units
    client = ServiceClient(args.url)
    try:
        created = client.submit(document)
        cid = created["id"]
        print(
            f"[submit] campaign {cid}: {len(specs)} spec(s) × "
            f"{document['repetitions']} repetition(s) via "
            f"{created['backend']} backend at {args.url}"
        )
        if args.events:
            for line in client.events(cid, max_lines=args.events):
                print(line)
        if not args.wait:
            return 0
        final = client.wait(cid)
    except ServiceError as exc:
        print(f"[submit] {exc}")
        return 1
    print(f"[submit] {cid} finished: {final['state']}")
    for key in ("executed_units", "resumed_units", "quarantined_units"):
        if key in final:
            print(f"[submit]   {key.replace('_', ' ')}: {final[key]}")
    for aggregate in final.get("aggregates", ()):
        print(
            f"[submit]   {aggregate['spec']}: connectivity "
            f"{aggregate['connectivity']:.4f} over {aggregate['runs']} run(s)"
        )
    if final.get("error"):
        print(f"[submit]   error: {final['error']}")
    if args.export:
        payload = client.export(cid, deterministic=True)
        with open(args.export, "wb") as fh:
            fh.write(payload)
        print(f"[submit] wrote deterministic export to {args.export}")
    if final["state"] == "interrupted":
        return 3
    return 0 if final["state"] in ("done", "cancelled") else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _with_telemetry(
            args, lambda: _with_orchestrator(args, lambda: _run_single(args))
        )
    if args.command == "fuzz":
        return _run_fuzz(args)
    if args.command == "runs":
        return _run_runs(args)
    if args.command == "report":
        return _with_telemetry(
            args, lambda: _with_orchestrator(args, lambda: _run_report(args))
        )
    if args.command == "unicast":
        return _run_unicast(args)
    if args.command == "lifetime":
        return _run_lifetime(args)
    if args.command == "equivalence":
        return _with_telemetry(
            args, lambda: _with_orchestrator(args, lambda: _run_equivalence(args))
        )
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "submit":
        return _run_submit(args)
    return _with_telemetry(
        args, lambda: _with_orchestrator(args, lambda: _run_figures(args))
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
