"""Routing layers: geographic unicast (mobility-tolerant side) and
store-and-relay schemes (mobility-assisted side)."""

from repro.routing.aodv import AodvRecord, AodvRouting, AodvStats
from repro.routing.base import ContactProcessConfig, RoutingOutcome
from repro.routing.epidemic import EpidemicRouting, TwoHopRelayRouting
from repro.routing.geographic import (
    GeographicRouter,
    GeoRouteResult,
    gabriel_planarise,
)

__all__ = [
    "RoutingOutcome",
    "ContactProcessConfig",
    "EpidemicRouting",
    "TwoHopRelayRouting",
    "GeographicRouter",
    "GeoRouteResult",
    "gabriel_planarise",
    "AodvRouting",
    "AodvRecord",
    "AodvStats",
]
