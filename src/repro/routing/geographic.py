"""Geographic unicast routing over an effective topology (GFG/GPSR style).

The point of mobility-tolerant management (Section 2.2) is that, with a
connected effective topology, "a normal routing protocol can be used and a
short delay can be expected."  This module supplies that normal protocol:

- **greedy forwarding** — each hop moves to the neighbor closest to the
  destination;
- **perimeter (face) recovery** — when greedy hits a local minimum, route
  by the right-hand rule along a *planarised* subgraph until greedy can
  resume closer to the destination (GPSR; Karp & Kung 2000).

The planarisation uses the Gabriel condition on the current adjacency —
a neat structural bonus of this paper's setting: RNG- and Gabriel-based
logical topologies are already planar, so face routing works on them
directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.util.validate import check_int_range

__all__ = ["GeoRouteResult", "GeographicRouter", "gabriel_planarise"]


@dataclass(frozen=True)
class GeoRouteResult:
    """Outcome of one geographic routing attempt.

    Attributes
    ----------
    delivered:
        Whether the packet reached the destination.
    path:
        Visited node sequence (source first; destination last if
        delivered).
    greedy_hops / perimeter_hops:
        Hop counts by mode (perimeter hops indicate topology voids).
    """

    delivered: bool
    path: tuple[int, ...]
    greedy_hops: int
    perimeter_hops: int

    @property
    def hops(self) -> int:
        """Total hops taken."""
        return len(self.path) - 1


def gabriel_planarise(adjacency: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Planar subgraph by the Gabriel condition, restricted to *adjacency*.

    Keeps edge (u, v) iff no common neighbor w lies strictly inside the
    disk with diameter (u, v).  On unit-disk-ish graphs this preserves
    connectivity while removing every crossing — the precondition face
    routing needs.
    """
    n = adjacency.shape[0]
    diff = positions[:, np.newaxis, :] - positions[np.newaxis, :, :]
    sq = np.einsum("ijk,ijk->ij", diff, diff)
    out = adjacency.copy()
    for u in range(n):
        for v in range(u + 1, n):
            if not out[u, v]:
                continue
            witnesses = np.flatnonzero(adjacency[u] & adjacency[v])
            for w in witnesses:
                if w != u and w != v and sq[u, w] + sq[w, v] < sq[u, v] - 1e-12:
                    out[u, v] = out[v, u] = False
                    break
    return out


class GeographicRouter:
    """Stateless GFG/GPSR routing on a frozen topology snapshot.

    Parameters
    ----------
    adjacency:
        Undirected boolean adjacency of usable links (e.g. a snapshot's
        ``effective_bidirectional()``).
    positions:
        ``(n, 2)`` node positions the greedy metric uses.
    max_hops:
        TTL; defaults to 4n (face walks can revisit nodes).
    """

    def __init__(
        self,
        adjacency: np.ndarray,
        positions: np.ndarray,
        max_hops: int | None = None,
    ) -> None:
        if adjacency.shape[0] != positions.shape[0]:
            raise ValueError("adjacency and positions disagree on node count")
        self.adjacency = adjacency | adjacency.T
        self.positions = np.asarray(positions, dtype=np.float64)
        n = adjacency.shape[0]
        self.max_hops = check_int_range(
            "max_hops", max_hops if max_hops is not None else 4 * max(n, 1), 1
        )
        self._planar: np.ndarray | None = None

    @property
    def planar(self) -> np.ndarray:
        """Gabriel planarisation of the adjacency (built lazily)."""
        if self._planar is None:
            self._planar = gabriel_planarise(self.adjacency, self.positions)
        return self._planar

    # ------------------------------------------------------------------ #

    def _dist(self, a: int, b: int) -> float:
        d = self.positions[a] - self.positions[b]
        return float(math.hypot(d[0], d[1]))

    def _greedy_next(self, current: int, dest: int) -> int | None:
        """Neighbor strictly closer to *dest* than *current*, or None."""
        nbrs = np.flatnonzero(self.adjacency[current])
        if nbrs.size == 0:
            return None
        d_cur = self._dist(current, dest)
        best, best_d = None, d_cur
        for v in nbrs:
            d = self._dist(int(v), dest)
            if d < best_d - 1e-12 or (best is not None and d == best_d and v < best):
                best, best_d = int(v), d
        return best

    def _angle(self, a: int, b: int) -> float:
        d = self.positions[b] - self.positions[a]
        return math.atan2(d[1], d[0])

    def _rhr_next(self, current: int, came_from_angle: float) -> int | None:
        """Right-hand-rule successor on the planar subgraph.

        The next edge is the first one counterclockwise from the reversed
        incoming direction.
        """
        nbrs = np.flatnonzero(self.planar[current])
        if nbrs.size == 0:
            return None
        best, best_key = None, math.inf
        for v in nbrs:
            ang = self._angle(current, int(v))
            key = (ang - came_from_angle) % (2.0 * math.pi)
            if key < 1e-12:
                key = 2.0 * math.pi  # do not immediately bounce back
            if key < best_key:
                best, best_key = int(v), key
        return best

    # ------------------------------------------------------------------ #

    def route(self, source: int, dest: int) -> GeoRouteResult:
        """Route one packet; greedy with perimeter recovery."""
        n = self.adjacency.shape[0]
        if not (0 <= source < n and 0 <= dest < n):
            raise ValueError("source/destination out of range")
        path = [source]
        greedy_hops = perimeter_hops = 0
        current = source
        mode = "greedy"
        # perimeter-mode state: where greedy failed, and the previous hop
        anchor_dist = 0.0
        incoming_angle = 0.0
        while current != dest and len(path) - 1 < self.max_hops:
            if mode == "greedy":
                nxt = self._greedy_next(current, dest)
                if nxt is not None:
                    current = nxt
                    path.append(current)
                    greedy_hops += 1
                    continue
                # local minimum: enter perimeter mode
                mode = "perimeter"
                anchor_dist = self._dist(current, dest)
                incoming_angle = self._angle(current, dest)
            # perimeter step (right-hand rule on the planar subgraph)
            nxt = self._rhr_next(current, incoming_angle)
            if nxt is None:
                break  # isolated in the planar subgraph
            incoming_angle = self._angle(nxt, current)
            current = nxt
            path.append(current)
            perimeter_hops += 1
            if self._dist(current, dest) < anchor_dist - 1e-12:
                mode = "greedy"
        return GeoRouteResult(
            delivered=(current == dest),
            path=tuple(path),
            greedy_hops=greedy_hops,
            perimeter_hops=perimeter_hops,
        )

    def route_many(self, pairs) -> list[GeoRouteResult]:
        """Route a batch of (source, dest) pairs."""
        return [self.route(int(s), int(d)) for s, d in pairs]
