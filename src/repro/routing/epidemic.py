"""Epidemic routing (Vahdat & Becker 2000) and two-hop relay
(Grossglauser & Tse 2001) over analytic mobility.

Both schemes tolerate partitions: a node stores a copy and hands it over
on contact, so *node movement itself* transports data.  Delivery is
eventual and the interesting metric is delay — the opposite trade to the
paper's mobility-tolerant mechanisms, and exactly the combination its
future-work section wants to study.

The contact process is discretised at ``config.step`` seconds: at each
tick, every pair within ``contact_range`` may exchange.  With the paper's
speeds and sub-second steps this loses no contacts of meaningful duration.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.grid import DENSE_THRESHOLD
from repro.mobility.base import MobilityModel
from repro.routing.base import (
    ContactProcessConfig,
    MobilityDistanceCache,
    RoutingOutcome,
)
from repro.util.validate import check_probability

__all__ = ["EpidemicRouting", "TwoHopRelayRouting"]


class _ContactSimulation:
    """Shared tick loop: subclasses decide who may infect whom.

    Distance matrices per tick come from a
    :class:`~repro.routing.base.MobilityDistanceCache`: a study delivers
    many (source, destination) pairs over the same tick grid, so each
    tick's ``(n, n)`` matrix is computed once and reused.  Pass
    *dist_cache* to share matrices between several routers over the same
    mobility.
    """

    def __init__(
        self,
        mobility: MobilityModel,
        config: ContactProcessConfig | None = None,
        copy_probability: float = 1.0,
        rng: np.random.Generator | None = None,
        dist_cache: MobilityDistanceCache | None = None,
    ) -> None:
        self.mobility = mobility
        self.config = config or ContactProcessConfig()
        self.copy_probability = check_probability("copy_probability", copy_probability)
        if self.copy_probability < 1.0 and rng is None:
            raise ValueError("copy_probability < 1 requires an rng")
        self._rng = rng
        if dist_cache is not None and dist_cache.mobility is not mobility:
            raise ValueError("dist_cache was built over a different mobility model")
        self.dist_cache = dist_cache or MobilityDistanceCache(mobility)

    def _may_copy(self, n_candidates: int) -> np.ndarray:
        if self.copy_probability >= 1.0:
            return np.ones(n_candidates, dtype=bool)
        return self._rng.random(n_candidates) < self.copy_probability

    def _forwarders(self, carriers: np.ndarray, source: int) -> np.ndarray:
        """Mask of carriers allowed to hand the packet on (scheme-specific)."""
        raise NotImplementedError

    @property
    def _sparse(self) -> bool:
        """Run ticks on CSR contact graphs instead of dense matrices?

        The switch mirrors the snapshot pipeline's: below the dense
        threshold the historical dense code runs unchanged; above it a
        tick costs O(contacts), never ``(n, n)``.  Both paths see the same
        boundary-inclusive contact predicate and produce candidate arrays
        in the same ascending order, so the rng draw stream (and therefore
        every outcome) is identical either way.
        """
        return self.mobility.n_nodes >= DENSE_THRESHOLD

    def deliver(self, source: int, destination: int, start_time: float = 0.0) -> RoutingOutcome:
        """Inject a message at *source* and simulate until delivery/deadline."""
        n = self.mobility.n_nodes
        if not (0 <= source < n and 0 <= destination < n):
            raise ValueError("source/destination out of range")
        if source == destination:
            return RoutingOutcome(source, destination, True, 0.0, 1, 0)
        cfg = self.config
        sparse = self._sparse
        carriers = np.zeros(n, dtype=bool)
        carriers[source] = True
        contacts = 0
        t = start_time
        end = min(start_time + cfg.deadline, self.mobility.horizon)
        while t <= end + 1e-9:
            forwarders = self._forwarders(carriers, source)
            if sparse:
                graph = self.dist_cache.contacts_at(t, cfg.contact_range)
                heard = np.unique(graph.gather_rows(np.flatnonzero(forwarders)))
                candidates = heard[~carriers[heard]]
            else:
                dist = self.dist_cache.at(t)
                in_contact = (dist <= cfg.contact_range) & forwarders[:, np.newaxis]
                np.fill_diagonal(in_contact, False)
                candidates = np.flatnonzero(in_contact.any(axis=0) & ~carriers)
            if candidates.size:
                accept = self._may_copy(candidates.size)
                newly = candidates[accept]
                contacts += int(newly.size)
                carriers[newly] = True
            if carriers[destination]:
                return RoutingOutcome(
                    source,
                    destination,
                    True,
                    t - start_time,
                    int(carriers.sum()),
                    contacts,
                )
            t += cfg.step
        return RoutingOutcome(
            source, destination, False, math.inf, int(carriers.sum()), contacts
        )


class EpidemicRouting(_ContactSimulation):
    """Flooding in time: every carrier infects every contact.

    Maximal delivery probability and minimal delay among store-and-relay
    schemes, at maximal buffer/bandwidth cost (`copies` grows toward n).
    ``copy_probability`` < 1 gives the probabilistic gossip variant the
    paper cites for bandwidth reduction.
    """

    def _forwarders(self, carriers: np.ndarray, source: int) -> np.ndarray:
        return carriers


class TwoHopRelayRouting(_ContactSimulation):
    """Grossglauser-Tse two-hop relay: only the source recruits relays.

    A relay stores the copy but hands it only to the destination, bounding
    the copy count; delay is longer than epidemic's but capacity scales.
    """

    def _forwarders(self, carriers: np.ndarray, source: int) -> np.ndarray:
        mask = np.zeros_like(carriers)
        mask[source] = carriers[source]
        return mask

    def deliver(self, source: int, destination: int, start_time: float = 0.0) -> RoutingOutcome:
        # Relays may pass to the destination only: run the generic loop
        # but intercept relay->destination contacts each tick.
        n = self.mobility.n_nodes
        if not (0 <= source < n and 0 <= destination < n):
            raise ValueError("source/destination out of range")
        if source == destination:
            return RoutingOutcome(source, destination, True, 0.0, 1, 0)
        cfg = self.config
        sparse = self._sparse
        carriers = np.zeros(n, dtype=bool)
        carriers[source] = True
        contacts = 0
        t = start_time
        end = min(start_time + cfg.deadline, self.mobility.horizon)
        while t <= end + 1e-9:
            if sparse:
                graph = self.dist_cache.contacts_at(t, cfg.contact_range)
                near_dest = graph.row(destination)
                dest_hears_carrier = bool(carriers[near_dest].any())
                near_source = graph.row(source)
                candidates = near_source[~carriers[near_source]]
            else:
                within = self.dist_cache.at(t) <= cfg.contact_range
                dest_hears_carrier = bool(
                    (within[destination] & carriers)[np.arange(n) != destination].any()
                )
                candidates = np.flatnonzero(within[source] & ~carriers)
                candidates = candidates[candidates != source]
            # any carrier (source or relay) in contact with the destination
            if dest_hears_carrier:
                carriers[destination] = True
                return RoutingOutcome(
                    source, destination, True, t - start_time,
                    int(carriers.sum()), contacts + 1,
                )
            # source recruits new relays
            if candidates.size:
                accept = self._may_copy(candidates.size)
                newly = candidates[accept]
                contacts += int(newly.size)
                carriers[newly] = True
            t += cfg.step
        return RoutingOutcome(
            source, destination, False, math.inf, int(carriers.sum()), contacts
        )
