"""Mobility-assisted routing substrate: common types.

The paper's Section 2.2 splits mobility management into *mobility-tolerant*
(this repo's main subject: keep the effective topology connected at every
instant) and *mobility-assisted* (tolerate partitions, let movement carry
data, measure *delay* instead of snapshot connectivity).  Its future work
proposes combining the two.  This package implements the classic
mobility-assisted baselines so that comparison can actually be run.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.geometry.csr import CSRGraph
from repro.geometry.points import pairwise_distances
from repro.geometry.sparse import neighborhood_csr
from repro.util.validate import check_positive

__all__ = ["RoutingOutcome", "ContactProcessConfig", "MobilityDistanceCache"]


class MobilityDistanceCache:
    """Bounded per-time memo of pairwise-distance matrices over a mobility model.

    Contact-process routing re-reads the same tick grid for every
    (source, destination) pair of a study, so the ``(n, n)`` distance
    matrix of each tick is recomputed up to ``n_pairs`` times.  This cache
    keys matrices by exact query time and evicts least-recently-used
    entries beyond *maxsize* (a full study's tick grid usually fits).

    Two views are served: :meth:`at` returns the dense matrix (small n)
    and :meth:`contacts_at` a :class:`~repro.geometry.csr.CSRGraph` of the
    contact neighborhoods at a given range — the form the tick loops use
    at scale, where a dense matrix per tick would be quadratic.  Each view
    is cached independently so a study uses exactly one of them per tick.

    Share one instance across routers over the same mobility to share the
    matrices too.
    """

    __slots__ = ("mobility", "maxsize", "_store", "_contacts", "hits", "misses")

    def __init__(self, mobility, maxsize: int = 512) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.mobility = mobility
        self.maxsize = int(maxsize)
        self._store: OrderedDict[float, np.ndarray] = OrderedDict()
        self._contacts: OrderedDict[tuple[float, float], CSRGraph] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def at(self, t: float) -> np.ndarray:
        """Pairwise distances between all nodes at time *t* (cached)."""
        key = float(t)
        dist = self._store.get(key)
        if dist is not None:
            self._store.move_to_end(key)
            self.hits += 1
            return dist
        self.misses += 1
        dist = pairwise_distances(self.mobility.positions(key))
        self._store[key] = dist
        if len(self._store) > self.maxsize:
            self._store.popitem(last=False)
        return dist

    def contacts_at(self, t: float, radius: float) -> CSRGraph:
        """Contact graph (pairs within *radius*) at time *t* (cached).

        Distances ride along as edge data; the predicate is the same
        boundary-inclusive ``d <= radius`` as the dense path, so
        ``contacts_at(t, r).to_dense()`` equals ``at(t) <= r`` off the
        diagonal bit-for-bit.
        """
        key = (float(t), float(radius))
        graph = self._contacts.get(key)
        if graph is not None:
            self._contacts.move_to_end(key)
            self.hits += 1
            return graph
        self.misses += 1
        graph = neighborhood_csr(self.mobility.positions(float(t)), float(radius))
        self._contacts[key] = graph
        if len(self._contacts) > self.maxsize:
            self._contacts.popitem(last=False)
        return graph


@dataclass(frozen=True)
class RoutingOutcome:
    """Result of delivering (or failing to deliver) one message.

    Attributes
    ----------
    source, destination:
        End nodes.
    delivered:
        Whether the destination received a copy before the deadline.
    delay:
        Seconds from injection to first delivery (inf when undelivered).
    copies:
        Number of nodes that ever held a copy (buffer-cost proxy).
    contacts:
        Pairwise transfer events performed (bandwidth-cost proxy).
    """

    source: int
    destination: int
    delivered: bool
    delay: float
    copies: int
    contacts: int

    def __post_init__(self) -> None:
        if self.delivered and not math.isfinite(self.delay):
            raise ValueError("a delivered message must have a finite delay")


@dataclass(frozen=True)
class ContactProcessConfig:
    """Discretised contact process driving store-and-relay schemes.

    Attributes
    ----------
    contact_range:
        Two nodes can exchange data when within this range, metres.
    step:
        Contact-detection granularity, seconds (a beaconing period).
    deadline:
        Give up after this many seconds.
    """

    contact_range: float = 250.0
    step: float = 0.5
    deadline: float = 100.0

    def __post_init__(self) -> None:
        check_positive("contact_range", self.contact_range)
        check_positive("step", self.step)
        check_positive("deadline", self.deadline)
