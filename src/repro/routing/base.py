"""Mobility-assisted routing substrate: common types.

The paper's Section 2.2 splits mobility management into *mobility-tolerant*
(this repo's main subject: keep the effective topology connected at every
instant) and *mobility-assisted* (tolerate partitions, let movement carry
data, measure *delay* instead of snapshot connectivity).  Its future work
proposes combining the two.  This package implements the classic
mobility-assisted baselines so that comparison can actually be run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validate import check_positive

__all__ = ["RoutingOutcome", "ContactProcessConfig"]


@dataclass(frozen=True)
class RoutingOutcome:
    """Result of delivering (or failing to deliver) one message.

    Attributes
    ----------
    source, destination:
        End nodes.
    delivered:
        Whether the destination received a copy before the deadline.
    delay:
        Seconds from injection to first delivery (inf when undelivered).
    copies:
        Number of nodes that ever held a copy (buffer-cost proxy).
    contacts:
        Pairwise transfer events performed (bandwidth-cost proxy).
    """

    source: int
    destination: int
    delivered: bool
    delay: float
    copies: int
    contacts: int

    def __post_init__(self) -> None:
        if self.delivered and not math.isfinite(self.delay):
            raise ValueError("a delivered message must have a finite delay")


@dataclass(frozen=True)
class ContactProcessConfig:
    """Discretised contact process driving store-and-relay schemes.

    Attributes
    ----------
    contact_range:
        Two nodes can exchange data when within this range, metres.
    step:
        Contact-detection granularity, seconds (a beaconing period).
    deadline:
        Give up after this many seconds.
    """

    contact_range: float = 250.0
    step: float = 0.5
    deadline: float = 100.0

    def __post_init__(self) -> None:
        check_positive("contact_range", self.contact_range)
        check_positive("step", self.step)
        check_positive("deadline", self.deadline)
