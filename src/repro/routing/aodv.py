"""AODV-style reactive unicast over the live simulation.

Geographic routing (``repro.routing.geographic``) needs a location
service; the other classic MANET unicast family discovers routes on
demand.  This is a faithful-in-structure AODV-lite:

- **route discovery** — the source floods a RREQ over the *directed
  effective topology* (same acceptance rules as data: logical-neighbor
  filtering unless PN mode); the flood builds reverse-path pointers;
- **route reply** — the destination returns a RREP hop-by-hop along the
  reverse path, with per-hop liveness checks while nodes keep moving;
  the confirmed path is cached as a route;
- **data forwarding** — packets follow the cached route with per-hop
  range checks; a broken hop triggers a route error and (bounded)
  rediscovery.

The RREQ flood itself is evaluated instantaneously (the paper's
sub-10 ms flood argument); RREPs and data travel with per-hop delays, so
mobility during the handshake is what breaks fragile topologies — exactly
the failure mode mobility-sensitive topology control exists to prevent.
Control-message costs (RREQ transmissions, RREPs) are recorded so the
*discovery overhead* of a topology can be compared across protocols.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.csr import CSRGraph, csr_bfs, csr_bfs_parents
from repro.sim.flood import directed_bfs
from repro.sim.world import NetworkWorld
from repro.util.validate import check_int_range, check_positive

__all__ = ["AodvRecord", "AodvStats", "AodvRouting"]


@dataclass
class AodvRecord:
    """Lifecycle of one AODV data packet."""

    packet_id: int
    source: int
    destination: int
    injected_at: float
    delivered_at: float | None = None
    dropped_at: float | None = None
    drop_reason: str = ""
    discoveries: int = 0
    rreq_transmissions: int = 0
    data_hops: int = 0
    route: list[int] = field(default_factory=list)

    @property
    def delivered(self) -> bool:
        """Whether the packet reached its destination."""
        return self.delivered_at is not None

    @property
    def delay(self) -> float:
        """End-to-end latency including discovery (inf while undelivered)."""
        if self.delivered_at is None:
            return math.inf
        return self.delivered_at - self.injected_at


@dataclass(frozen=True)
class AodvStats:
    """Aggregate over AODV records."""

    sent: int
    delivered: int
    mean_delay: float
    mean_discoveries: float
    mean_rreq_cost: float

    @property
    def delivery_ratio(self) -> float:
        """Delivered / sent (1.0 for zero traffic)."""
        return self.delivered / self.sent if self.sent else 1.0


class AodvRouting:
    """On-demand route discovery and forwarding agent.

    Parameters
    ----------
    world:
        Live simulation.
    hop_delay:
        Per-hop latency of RREPs and data packets, seconds.
    max_discoveries:
        Route discoveries allowed per packet before giving up.
    """

    def __init__(
        self,
        world: NetworkWorld,
        hop_delay: float = 2e-3,
        max_discoveries: int = 2,
    ) -> None:
        self.world = world
        self.hop_delay = check_positive("hop_delay", hop_delay)
        self.max_discoveries = check_int_range("max_discoveries", max_discoveries, 1)
        self.records: list[AodvRecord] = []
        self.routes: dict[tuple[int, int], list[int]] = {}
        self._next_id = 0

    # ------------------------------------------------------------------ #

    def send(self, source: int, destination: int) -> AodvRecord:
        """Inject one packet; discovery runs if no cached route exists."""
        n = self.world.config.n_nodes
        if not (0 <= source < n and 0 <= destination < n):
            raise ValueError("source/destination out of range")
        record = AodvRecord(
            packet_id=self._next_id,
            source=source,
            destination=destination,
            injected_at=self.world.engine.now,
        )
        self._next_id += 1
        self.records.append(record)
        if source == destination:
            record.delivered_at = record.injected_at
            return record
        self._ensure_route_then_send(record)
        return record

    # ------------------------------------------------------------------ #

    def _effective_topology(self) -> np.ndarray | CSRGraph:
        """Directed effective topology in whichever form the snapshot holds.

        Dense below the sparse switch (unchanged semantics), CSR at scale
        so a discovery never materialises an ``(n, n)`` matrix.
        """
        snap = self.world.snapshot()
        pn = self.world.manager.physical_neighbor_mode
        if snap.prefers_dense:
            return snap.effective_directed(pn)
        return snap.effective_directed_csr(pn)

    def _ensure_route_then_send(self, record: AodvRecord) -> None:
        key = (record.source, record.destination)
        route = self.routes.get(key)
        if route:
            self._forward_data(record, route, 0)
            return
        if record.discoveries >= self.max_discoveries:
            record.dropped_at = self.world.engine.now
            record.drop_reason = "discovery-limit"
            return
        record.discoveries += 1
        # --- RREQ flood: reverse-path construction (instantaneous) ---
        if self.world.manager.recompute_on_packet:
            self.world.redecide_all()
        topo = self._effective_topology()
        if isinstance(topo, CSRGraph):
            reached = csr_bfs(topo, record.source)
        else:
            reached = directed_bfs(topo, record.source)
        record.rreq_transmissions += int(reached.sum())
        self.world.channel.stats.data_transmissions += int(reached.sum())
        if not reached[record.destination]:
            record.dropped_at = self.world.engine.now
            record.drop_reason = "destination-unreachable"
            return
        if isinstance(topo, CSRGraph):
            path = self._csr_path(topo, record.source, record.destination)
        else:
            path = self._bfs_path(topo, record.source, record.destination)
        # --- RREP back along the reverse path, hop by hop ---
        self._forward_rrep(record, path, len(path) - 1)

    @staticmethod
    def _bfs_path(adj: np.ndarray, source: int, dest: int) -> list[int]:
        """Shortest hop path source -> dest in a directed boolean graph."""
        n = adj.shape[0]
        parent = np.full(n, -1, dtype=np.intp)
        parent[source] = source
        frontier = [source]
        while frontier:
            nxt = []
            for u in frontier:
                for v in np.flatnonzero(adj[u]):
                    if parent[v] < 0:
                        parent[v] = u
                        if v == dest:
                            path = [int(v)]
                            while path[-1] != source:
                                path.append(int(parent[path[-1]]))
                            return path[::-1]
                        nxt.append(int(v))
            frontier = nxt
        raise AssertionError("caller guarantees reachability")

    @staticmethod
    def _csr_path(graph: CSRGraph, source: int, dest: int) -> list[int]:
        """Shortest hop path source -> dest over a directed CSR adjacency."""
        parent = csr_bfs_parents(graph, source)
        path = [int(dest)]
        while path[-1] != source:
            path.append(int(parent[path[-1]]))
        return path[::-1]

    def _link_alive(self, u: int, v: int) -> bool:
        """Is the directed effective link u -> v usable right now?"""
        now = self.world.engine.now
        positions = self.world.positions(now)
        d = float(np.hypot(*(positions[v] - positions[u])))
        node = self.world.nodes[u]
        if d > node.extended_range:
            return False
        if self.world.manager.physical_neighbor_mode:
            return True
        return v in node.logical_neighbors

    def _forward_rrep(self, record: AodvRecord, path: list[int], index: int) -> None:
        """RREP travels dest -> source; reverse links must be alive."""
        if index == 0:
            # reply reached the source: install the route, send the data
            self.routes[(record.source, record.destination)] = path
            record.route = list(path)
            self._forward_data(record, path, 0)
            return
        holder, prev = path[index], path[index - 1]
        if not self._link_alive(holder, prev):
            # reverse path broke while replying: try another discovery
            self._ensure_route_then_send(record)
            return
        self.world.channel.stats.data_transmissions += 1
        self.world.engine.schedule_after(
            self.hop_delay, self._forward_rrep, record, path, index - 1
        )

    def _forward_data(self, record: AodvRecord, path: list[int], index: int) -> None:
        if path[index] == record.destination:
            record.delivered_at = self.world.engine.now
            return
        u, v = path[index], path[index + 1]
        if not self._link_alive(u, v):
            # route error: purge and rediscover
            self.routes.pop((record.source, record.destination), None)
            self._ensure_route_then_send(record)
            return
        record.data_hops += 1
        self.world.channel.stats.data_transmissions += 1
        self.world.engine.schedule_after(
            self.hop_delay, self._forward_data, record, path, index + 1
        )

    # ------------------------------------------------------------------ #

    def stats(self) -> AodvStats:
        """Aggregate the records injected so far."""
        sent = len(self.records)
        delivered = [r for r in self.records if r.delivered]
        return AodvStats(
            sent=sent,
            delivered=len(delivered),
            mean_delay=(
                float(np.mean([r.delay for r in delivered])) if delivered else math.inf
            ),
            mean_discoveries=(
                float(np.mean([r.discoveries for r in self.records])) if sent else 0.0
            ),
            mean_rreq_cost=(
                float(np.mean([r.rreq_transmissions for r in self.records]))
                if sent
                else 0.0
            ),
        )
