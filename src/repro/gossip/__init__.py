"""Anti-entropy gossip dissemination (the fourth consistency mechanism).

The mechanism class itself, :class:`~repro.core.consistency.GossipConsistency`,
lives in the consistency registry; this package holds the epidemic
machinery it rides on — the pure digest/merge primitives and the
engine-scheduled round driver.  See ``docs/GOSSIP.md`` for the protocol,
determinism contract and staleness bound.
"""

from repro.gossip.digest import entries_newer_than, merge_entries, view_digest
from repro.gossip.engine import GossipEngine

__all__ = [
    "GossipEngine",
    "entries_newer_than",
    "merge_entries",
    "view_digest",
]
