"""Digest and merge primitives for anti-entropy view synchronization.

The gossip mechanism disseminates Hello state epidemically instead of
relying on every node hearing every neighbor directly.  Three pure
functions implement the protocol's data plane over the existing
:class:`~repro.core.tables.NeighborTable`:

- :func:`view_digest` — the compact summary a node advertises: the latest
  Hello *version* it holds per sender (its own advertisement included),
  age-filtered so silent peers drop out of circulation;
- :func:`entries_newer_than` — the delta a node answers a digest with:
  every retained latest Hello strictly newer than what the digest claims;
- :func:`merge_entries` — the monotone last-writer-wins merge: an entry is
  recorded only when its version is strictly greater than the newest
  retained version for that sender, so per-sender version order (audit
  invariant 5) is preserved and re-merging is idempotent.

All three are deterministic and side-effect free except for
:func:`merge_entries`' explicit table writes, which makes the merge
algebra (monotone / commutative / idempotent on the latest-entry state)
directly property-testable — see ``tests/test_property_gossip.py``.
"""

from __future__ import annotations

from repro.core.tables import NeighborTable
from repro.core.views import Hello

__all__ = ["view_digest", "entries_newer_than", "merge_entries"]


def view_digest(
    table: NeighborTable, now: float, removal_age: float
) -> dict[int, int]:
    """Latest retained Hello version per sender, age-filtered.

    The owner's own last advertisement is included (it is the entry the
    rest of the network is most interested in).  A neighbor whose newest
    retained Hello is older than *removal_age* is omitted — the epidemic
    analogue of peer removal: nobody re-advertises a silent node, so its
    state ages out of circulation everywhere at once.
    """
    digest: dict[int, int] = {}
    own = table.last_advertised
    if own is not None:
        digest[table.owner] = own.version
    for nid in table.known_neighbors():
        latest = table.history_of(nid)[-1]
        if now - latest.sent_at <= removal_age:
            digest[nid] = latest.version
    return digest


def entries_newer_than(
    table: NeighborTable,
    digest: dict[int, int],
    now: float,
    removal_age: float,
) -> tuple[Hello, ...]:
    """Retained latest Hellos strictly newer than *digest* claims.

    The pull half of anti-entropy: given a peer's digest, return every
    entry the peer provably lacks — its digest names an older version, or
    no version at all.  Entries older than *removal_age* are never
    relayed (an expired entry cannot influence any expiry-filtered view,
    so shipping it would be pure overhead).  Hellos are frozen, so the
    returned objects are shared, never copied.
    """
    out: list[Hello] = []
    own = table.last_advertised
    if own is not None and digest.get(table.owner, -1) < own.version:
        out.append(own)
    for nid in table.known_neighbors():
        latest = table.history_of(nid)[-1]
        if (
            now - latest.sent_at <= removal_age
            and digest.get(nid, -1) < latest.version
        ):
            out.append(latest)
    return tuple(out)


def merge_entries(table: NeighborTable, entries: tuple[Hello, ...]) -> int:
    """Monotone last-writer-wins merge of *entries* into *table*.

    An entry is recorded only when strictly newer than the newest
    retained version for its sender; entries about the owner itself are
    skipped (a node is the sole authority on its own advertisements).
    Returns the number of entries actually recorded.

    The strictly-newer rule gives the merge its algebraic contract on the
    latest-entry state: versions never decrease (monotone), merge order
    does not matter (commutative), and re-merging already-known entries
    is a no-op (idempotent).
    """
    merged = 0
    for hello in entries:
        if hello.sender == table.owner:
            continue
        history = table.history_of(hello.sender)
        if history and hello.version <= history[-1].version:
            continue
        table.record_hello(hello)
        merged += 1
    return merged
