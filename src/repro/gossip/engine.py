"""Deterministic anti-entropy round driver for the gossip mechanism.

:class:`GossipEngine` schedules, for every node, a jittered periodic
gossip round through the simulation :class:`~repro.sim.engine.Engine`.
Each round is a three-message push–pull exchange with ``fanout`` peers
sampled (without replacement) from the nodes currently inside normal
Hello range, plus two maintenance duties:

1. **age-based peer removal** — the node prunes its table and never
   relays entries older than ``removal_age``, so a silent peer's state
   ages out of circulation everywhere instead of bouncing between relays
   forever;
2. **mayday recovery** — when the node's live view has been empty for
   ``mayday_after`` seconds while in-range peers exist, it broadcasts a
   re-request and every in-range peer answers with its full fresh view.

The exchange itself (per selected peer ``v``, with one-hop delay δ):

====  ======  =====================================================
step  t+kδ    action
====  ======  =====================================================
1     t+δ     ``u``'s digest reaches ``v``
2     t+2δ    ``v``'s delta (entries newer than the digest) + ``v``'s
              own digest reach ``u``; ``u`` merges
3     t+3δ    ``u``'s counter-push (entries ``v`` lacks) reaches ``v``;
              ``v`` merges (omitted when empty)
====  ======  =====================================================

Determinism contract: the only randomness is the dedicated ``"gossip"``
seed stream (round-start jitter drawn in node-id order at construction,
then peer sampling consumed in engine event order, which is itself
deterministic by ``(time, seq)``).  Peer candidates come from true
geometry, never from decisions, so decision-cache twins consume the
stream identically — cache on/off bit-identity is preserved.  Nothing
here runs unless the world's mechanism is ``"gossip"``, so every other
mechanism stays byte-identical.
"""

from __future__ import annotations

import numpy as np

from repro.gossip.digest import entries_newer_than, merge_entries, view_digest
from repro.sim.engine import PeriodicTimer

__all__ = ["GossipEngine"]


class GossipEngine:
    """Epidemic dissemination driver bound to one :class:`NetworkWorld`.

    Constructed by the world itself (only when the consistency mechanism
    is :class:`~repro.core.consistency.GossipConsistency`), with the
    world's dedicated ``"gossip"`` generator.  Counters feed
    :meth:`~repro.sim.world.NetworkWorld.gossip_stats`, run reports and
    :func:`~repro.metrics.overhead.measure_overhead`.
    """

    def __init__(self, world, rng: np.random.Generator) -> None:
        self.world = world
        self.rng = rng
        mech = world.manager.mechanism
        cfg = world.config
        self.fanout = mech.fanout
        self.interval = mech.interval
        self.removal_age = (
            cfg.hello_expiry if mech.removal_age is None else mech.removal_age
        )
        self.mayday_after = (
            2.0 * mech.interval if mech.mayday_after is None else mech.mayday_after
        )
        self.rounds = 0
        self.messages = 0
        self.merged = 0
        self.maydays = 0
        # Silence clocks for mayday: last physical time each node either
        # saw a live neighbor or issued a re-request (issuing one resets
        # the clock so an isolated node does not shout every round).
        self._last_live = [0.0] * cfg.n_nodes
        for node in world.nodes:
            first = float(rng.uniform(0.0, self.interval))
            PeriodicTimer(
                world.engine,
                self.interval,
                lambda _tick, nid=node.node_id: self._round(nid),
                first_at=first,
            )

    def as_dict(self) -> dict[str, int]:
        """Counter snapshot, keyed by the RunStats field names."""
        return {
            "gossip_rounds": self.rounds,
            "gossip_messages": self.messages,
            "gossip_merged": self.merged,
            "gossip_maydays": self.maydays,
        }

    def staleness_bound(self) -> float:
        """Worst-case extra view lag gossip adds, in seconds.

        Delegates to the mechanism's ``rounds_to_converge × interval``
        epidemic bound at this world's population.
        """
        mech = self.world.manager.mechanism
        return mech.staleness_bound(self.world.config.n_nodes)

    # -- round driver ---------------------------------------------------

    def _round(self, node_id: int) -> None:
        world = self.world
        now = world.engine.now
        inj = world.fault_injector
        if inj is not None and inj.node_down(node_id, now):
            return
        self.rounds += 1
        # Age-based peer removal happens at the dissemination layer: the
        # digest and delta filters stop advertising/relaying entries older
        # than removal_age, so a silent peer leaves circulation everywhere.
        # The table itself is never pruned — retained-but-expired history
        # is what the audit's ghost-neighbor invariant (and the freshness
        # oracle) reason over, exactly as under every other mechanism.
        table = world.nodes[node_id].table
        peers = self._peers_in_range(node_id, now)
        if table.known_neighbors(now):
            self._last_live[node_id] = now
        elif peers and now - self._last_live[node_id] >= self.mayday_after:
            self._mayday(node_id, now, peers)
            return
        if not peers:
            return
        k = min(self.fanout, len(peers))
        if k < len(peers):
            picks = self.rng.choice(len(peers), size=k, replace=False)
            chosen = [peers[i] for i in sorted(int(i) for i in picks)]
        else:
            chosen = peers
        digest = view_digest(table, now, self.removal_age)
        delay = world.config.propagation_delay
        for peer in chosen:
            self.messages += 1
            world.engine.schedule_batch(
                now + delay, self._on_digest, peer, node_id, digest
            )

    def _peers_in_range(self, node_id: int, now: float) -> list[int]:
        """Node ids within normal Hello range of *node_id*, ascending."""
        world = self.world
        positions, backend = world._geometry(now)
        hit = backend.neighbors_within(
            positions[node_id], world.config.normal_range
        )
        return [int(p) for p in hit if int(p) != node_id]

    # -- exchange messages ----------------------------------------------

    def _on_digest(
        self, receiver: int, origin: int, digest: dict[int, int]
    ) -> None:
        """Step 2: *receiver* answers *origin*'s digest with its delta."""
        world = self.world
        now = world.engine.now
        inj = world.fault_injector
        if inj is not None and inj.node_down(receiver, now):
            return
        table = world.nodes[receiver].table
        delta = entries_newer_than(table, digest, now, self.removal_age)
        reply_digest = view_digest(table, now, self.removal_age)
        self.messages += 1
        world.engine.schedule_batch(
            now + world.config.propagation_delay,
            self._on_reply,
            origin,
            receiver,
            delta,
            reply_digest,
        )

    def _on_reply(
        self,
        origin: int,
        peer: int,
        delta: tuple,
        peer_digest: dict[int, int],
    ) -> None:
        """Step 3: *origin* merges the delta, then counter-pushes."""
        world = self.world
        now = world.engine.now
        inj = world.fault_injector
        if inj is not None and inj.node_down(origin, now):
            return
        table = world.nodes[origin].table
        pulled = merge_entries(table, delta)
        self.merged += pulled
        push = entries_newer_than(table, peer_digest, now, self.removal_age)
        if push:
            self.messages += 1
            world.engine.schedule_batch(
                now + world.config.propagation_delay,
                self._on_push,
                peer,
                push,
            )
        tel = world._tel
        if tel is not None:
            tel.count("gossip_exchange")
            tel.event(
                "gossip_exchange",
                t=now,
                node=origin,
                peer=peer,
                pulled=pulled,
                pushed=len(push),
            )

    def _on_push(self, receiver: int, entries: tuple) -> None:
        world = self.world
        now = world.engine.now
        inj = world.fault_injector
        if inj is not None and inj.node_down(receiver, now):
            return
        self.merged += merge_entries(world.nodes[receiver].table, entries)

    # -- mayday recovery -------------------------------------------------

    def _mayday(self, node_id: int, now: float, peers: list[int]) -> None:
        """Silent-view recovery: re-request full views from all peers."""
        self.maydays += 1
        self.messages += 1
        self._last_live[node_id] = now
        delay = self.world.config.propagation_delay
        for peer in peers:
            self.world.engine.schedule_batch(
                now + delay, self._on_mayday, peer, node_id
            )
        tel = self.world._tel
        if tel is not None:
            tel.count("gossip_mayday")
            tel.event("gossip_mayday", t=now, node=node_id, peers=len(peers))

    def _on_mayday(self, responder: int, requester: int) -> None:
        world = self.world
        now = world.engine.now
        inj = world.fault_injector
        if inj is not None and inj.node_down(responder, now):
            return
        table = world.nodes[responder].table
        entries = entries_newer_than(table, {}, now, self.removal_age)
        if entries:
            self.messages += 1
            world.engine.schedule_batch(
                now + world.config.propagation_delay,
                self._merge_into,
                requester,
                entries,
            )

    def _merge_into(self, node_id: int, entries: tuple) -> None:
        world = self.world
        inj = world.fault_injector
        if inj is not None and inj.node_down(node_id, world.engine.now):
            return
        self.merged += merge_entries(world.nodes[node_id].table, entries)
